"""Tests for the parameter estimator (figure 7 pipeline)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import CORE_I7_4770K, XEON_E7_4820
from repro.core.estimator import ParameterEstimator
from repro.core.partition import PAPER_THRESHOLDS, Thresholds
from repro.core.plan import Strategy
from repro.gemm.bench import synthetic_profile
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR


def make_profile(platform=CORE_I7_4770K, threads=(1, 4), m=16):
    shapes = [(m, 2**ke, 2**ne) for ke in range(6, 11) for ne in range(4, 15)]
    return synthetic_profile(shapes, platform, threads=threads)


class TestDefaults:
    def test_paper_thresholds_without_profile(self):
        est = ParameterEstimator(max_threads=4)
        assert est.thresholds_for(16) == PAPER_THRESHOLDS

    def test_validation(self):
        with pytest.raises(ValueError):
            ParameterEstimator(max_threads=0)
        with pytest.raises(ValueError):
            ParameterEstimator(pth_bytes=0)


class TestThresholdsFromProfile:
    def test_derived_and_cached(self):
        est = ParameterEstimator(profile=make_profile(), max_threads=4)
        t1 = est.thresholds_for(16)
        t2 = est.thresholds_for(16)
        assert t1 is t2
        assert t1.msth_bytes < t1.mlth_bytes

    def test_nearest_m_probe(self):
        # Profile only has m=16 points; J=13 reuses them.
        est = ParameterEstimator(profile=make_profile(), max_threads=4)
        assert est.thresholds_for(13) == est.thresholds_for(16)

    def test_profile_thread_selection_respects_budget(self):
        est = ParameterEstimator(profile=make_profile(threads=(1, 4)),
                                 max_threads=2)
        # Only t=1 points fit within a 2-thread budget.
        assert est._profile_threads() == 1

    def test_profile_threads_all_over_budget_uses_smallest(self):
        """When every profiled count exceeds the budget, the smallest
        profiled count is used anyway — closest available evidence beats
        refusing to plan (documented on ``_profile_threads``)."""
        est = ParameterEstimator(profile=make_profile(threads=(4, 8)),
                                 max_threads=1)
        assert est._profile_threads() == 4
        # And planning still works off that extrapolated window.
        t = est.thresholds_for(16)
        assert 0 < t.msth_bytes <= t.mlth_bytes


def make_calibration(msth=4096, mlth=262_144, threads=1):
    """A minimal duck-typed calibration record (content-hashed)."""
    from repro.perf.dse import CalibrationRecord

    return CalibrationRecord(
        fingerprint="prop-test",
        thresholds={threads: Thresholds(msth, mlth)},
    )


class TestThresholdCacheKeyProperties:
    """The cached window must always equal a cold computation.

    ``thresholds_for`` caches per ``(j, max_threads, calibration)``;
    these properties drive a single estimator through arbitrary query
    sequences — including mutating ``max_threads`` and swapping the
    calibration mid-stream — and check every answer against a fresh
    estimator with identical configuration (which cannot have stale
    cache state by construction).
    """

    @settings(max_examples=25, deadline=None)
    @given(
        queries=st.lists(
            st.tuples(
                st.integers(min_value=1, max_value=32),   # j
                st.integers(min_value=1, max_value=8),    # max_threads
                st.booleans(),                            # calibrated?
            ),
            min_size=1,
            max_size=12,
        )
    )
    def test_cache_never_leaks_across_keys(self, queries):
        profile = make_profile(threads=(1, 4))
        record = make_calibration()
        est = ParameterEstimator(profile=profile, max_threads=1)
        for j, max_threads, calibrated in queries:
            est.max_threads = max_threads
            est.calibration = record if calibrated else None
            cold = ParameterEstimator(
                profile=make_profile(threads=(1, 4)),
                max_threads=max_threads,
                calibration=record if calibrated else None,
            )
            assert est.thresholds_for(j) == cold.thresholds_for(j)

    @settings(max_examples=25, deadline=None)
    @given(
        j=st.integers(min_value=1, max_value=32),
        max_threads=st.integers(min_value=1, max_value=8),
    )
    def test_distinct_records_never_alias(self, j, max_threads):
        """Two different fits share (j, max_threads) but not a window."""
        est = ParameterEstimator(
            profile=make_profile(), max_threads=max_threads
        )
        a = make_calibration(msth=1024, mlth=65_536)
        b = make_calibration(msth=2048, mlth=131_072)
        est.calibration = a
        got_a = est.thresholds_for(j)
        est.calibration = b
        got_b = est.thresholds_for(j)
        assert got_a == a.thresholds[1]
        assert got_b == b.thresholds[1]
        # Flipping back must not resurrect b's window for a's key.
        est.calibration = a
        assert est.thresholds_for(j) == a.thresholds[1]

    @settings(max_examples=25, deadline=None)
    @given(
        j=st.integers(min_value=1, max_value=32),
        max_threads=st.integers(min_value=1, max_value=8),
    )
    def test_paper_fallback_never_cached_as_calibrated(self, j, max_threads):
        """Without profile or calibration the paper window always returns,
        and attaching a record afterwards switches immediately."""
        est = ParameterEstimator(max_threads=max_threads)
        assert est.thresholds_for(j) == PAPER_THRESHOLDS
        record = make_calibration()
        est.calibration = record
        assert est.thresholds_for(j) == record.thresholds[1]
        est.calibration = None
        assert est.thresholds_for(j) == PAPER_THRESHOLDS


class TestEstimate:
    @pytest.fixture()
    def estimator(self):
        return ParameterEstimator(profile=make_profile(), max_threads=4)

    def test_plan_is_valid_and_forward_for_row_major(self, estimator):
        plan = estimator.estimate((100, 100, 100), 0, 16, ROW_MAJOR)
        assert plan.strategy is Strategy.FORWARD
        assert plan.mode == 0
        assert plan.degree >= 1
        assert plan.kernel == "blas"

    def test_backward_for_col_major(self, estimator):
        plan = estimator.estimate((100, 100, 100), 2, 16, COL_MAJOR)
        assert plan.strategy is Strategy.BACKWARD
        assert plan.component_modes[0] == 0

    def test_degree_respects_threshold_window(self, estimator):
        plan = estimator.estimate((40,) * 5, 0, 16, ROW_MAJOR)
        t = estimator.thresholds_for(16)
        assert plan.kernel_working_set_bytes <= t.mlth_bytes

    def test_loop_order_increasing_row_major(self, estimator):
        plan = estimator.estimate((20, 20, 20, 20, 20), 2, 16, ROW_MAJOR)
        assert list(plan.loop_modes) == sorted(plan.loop_modes)

    def test_loop_order_decreasing_col_major(self, estimator):
        plan = estimator.estimate((20, 20, 20, 20, 20), 2, 16, COL_MAJOR)
        assert list(plan.loop_modes) == sorted(plan.loop_modes, reverse=True)

    def test_small_kernel_gets_loop_threads(self, estimator):
        # Tiny trailing dim with a long loop mode: kernel far below PTH.
        plan = estimator.estimate((64, 8, 8), 1, 4, ROW_MAJOR)
        assert plan.kernel_working_set_bytes < 800 * 1024
        assert plan.loop_modes == (0,)
        assert plan.loop_threads == 4
        assert plan.kernel_threads == 1

    def test_large_kernel_gets_kernel_threads(self, estimator):
        plan = estimator.estimate((8, 512, 512), 0, 16, ROW_MAJOR)
        if plan.kernel_working_set_bytes >= 800 * 1024:
            assert plan.kernel_threads == 4
            assert plan.loop_threads == 1

    def test_last_mode_flips_to_backward_strategy(self, estimator):
        """Mode N-1 of a row-major tensor has no trailing modes; the
        estimator flips to the backward strategy (leftmost modes), whose
        kernel is still BLAS-legal because mode N-1 carries unit stride."""
        plan = estimator.estimate((30, 30, 30), 2, 16, ROW_MAJOR)
        assert plan.strategy is Strategy.BACKWARD
        assert plan.degree >= 1
        assert plan.component_modes[0] == 0

    def test_accepts_layout_strings(self, estimator):
        plan = estimator.estimate((10, 10, 10), 0, 4, "F")
        assert plan.layout is COL_MAJOR

    def test_refinement_prefers_coarser_merge_over_loop_overhead(self):
        """With a profile available, the model prices the Python loop
        overhead and rejects degree-1 plans with huge iteration counts."""
        est = ParameterEstimator(profile=make_profile(), max_threads=1)
        plan = est.estimate((80, 80, 80, 80), 0, 16, ROW_MAJOR)
        # Degree 1 would mean 6400 loop iterations of a tiny kernel.
        assert plan.degree >= 2 or plan.loop_iterations < 1000

    def test_refinement_can_be_disabled(self):
        base = ParameterEstimator(profile=make_profile(), max_threads=1,
                                  refine_with_model=False)
        refined = ParameterEstimator(profile=make_profile(), max_threads=1,
                                     refine_with_model=True)
        p_base = base.estimate((80, 80, 80, 80), 0, 16, ROW_MAJOR)
        p_ref = refined.estimate((80, 80, 80, 80), 0, 16, ROW_MAJOR)
        # Disabled: the pure-threshold choice; refined may differ.
        assert p_base.degree >= 1
        assert p_ref.degree >= p_base.degree

    def test_refinement_skips_far_out_of_range_kernels(self):
        """Kernels far beyond the profiled grid are never selected on the
        strength of an extrapolated lookup."""
        est = ParameterEstimator(profile=make_profile(), max_threads=1)
        plan = est.estimate((8, 8, 8, 8, 8, 8, 8), 0, 16, ROW_MAJOR)
        max_n = max(p.n for p in est.profile.points)
        assert plan.kernel_shape[2] <= 8 * max_n

    def test_no_refinement_without_profile(self):
        est = ParameterEstimator(max_threads=1)  # paper thresholds only
        plan = est.estimate((40, 40, 40), 0, 16, ROW_MAJOR)
        assert plan.degree >= 1  # falls back to pure threshold logic

    def test_platform_changes_thresholds(self):
        i7 = ParameterEstimator(profile=make_profile(CORE_I7_4770K),
                                max_threads=4)
        xeon = ParameterEstimator(profile=make_profile(XEON_E7_4820),
                                  max_threads=4)
        assert i7.thresholds_for(16) != xeon.thresholds_for(16)
