"""Unit + property tests for repro.tensor.views (the in-place sub-tensors)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR, element_strides
from repro.tensor.views import (
    fiber,
    merged_matrix_view,
    merged_stride,
    mode_slice,
    subtensor_matrix,
)
from repro.util.errors import LayoutError, ShapeError


class TestMergedStride:
    def test_single_mode(self):
        strides = element_strides((3, 4, 5), ROW_MAJOR)
        assert merged_stride(strides, (3, 4, 5), (1,)) == 5

    def test_trailing_pair_row_major(self):
        strides = element_strides((3, 4, 5), ROW_MAJOR)
        assert merged_stride(strides, (3, 4, 5), (1, 2)) == 1

    def test_leading_pair_col_major(self):
        strides = element_strides((3, 4, 5), COL_MAJOR)
        assert merged_stride(strides, (3, 4, 5), (0, 1)) == 1

    def test_leading_pair_row_major_merges_with_coarse_stride(self):
        # Modes (0, 1) of a row-major tensor nest too: stride 20 = 5*4.
        strides = element_strides((3, 4, 5), ROW_MAJOR)
        assert merged_stride(strides, (3, 4, 5), (0, 1)) == 5

    def test_non_consecutive_raises(self):
        strides = element_strides((3, 4, 5), ROW_MAJOR)
        with pytest.raises(LayoutError):
            merged_stride(strides, (3, 4, 5), (0, 2))

    def test_size_one_modes_never_block(self):
        strides = element_strides((3, 1, 5), ROW_MAJOR)
        assert merged_stride(strides, (3, 1, 5), (0, 1, 2)) == 1

    def test_empty_run_raises(self):
        with pytest.raises(ShapeError):
            merged_stride((1,), (3,), ())


class TestMergedMatrixView:
    def test_full_split_matches_reshape_row_major(self):
        t = DenseTensor.random((2, 3, 4), ROW_MAJOR, seed=0)
        view = merged_matrix_view(t, (0,), (1, 2), {})
        # Row-major: merged trailing run enumerates with the last mode fastest.
        assert np.array_equal(view, t.data.reshape(2, 12))
        assert np.shares_memory(view, t.data)

    def test_full_split_matches_reshape_col_major(self):
        t = DenseTensor.random((2, 3, 4), COL_MAJOR, seed=0)
        view = merged_matrix_view(t, (0,), (1, 2), {})
        # Column-major: merged run enumerates with the FIRST mode fastest,
        # which is exactly an F-order reshape.
        assert np.array_equal(view, t.data.reshape(2, 12, order="F"))
        assert np.shares_memory(view, t.data)

    def test_fixed_mode_selects_correct_block(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=1)
        for i in range(4):
            view = merged_matrix_view(t, (0,), (2,), {1: i})
            assert np.array_equal(view, t.data[:, i, :])

    def test_view_is_writable_through(self):
        t = DenseTensor.zeros((2, 3, 4))
        view = merged_matrix_view(t, (1,), (2,), {0: 1})
        view[:] = 9.0
        assert np.all(t.data[1] == 9.0)
        assert np.all(t.data[0] == 0.0)

    def test_merged_rows_and_cols(self):
        t = DenseTensor.random((2, 3, 4, 5), ROW_MAJOR, seed=2)
        view = merged_matrix_view(t, (0, 1), (2, 3), {})
        assert np.array_equal(view, t.data.reshape(6, 20))

    def test_merged_rows_and_cols_col_major(self):
        t = DenseTensor.random((2, 3, 4, 5), COL_MAJOR, seed=2)
        view = merged_matrix_view(t, (0, 1), (2, 3), {})
        assert np.array_equal(view, t.data.reshape(6, 20, order="F"))

    def test_col_major_backward_merge(self):
        t = DenseTensor.random((3, 4, 5), COL_MAJOR, seed=3)
        # Leading modes merge with unit stride under column-major storage.
        view = merged_matrix_view(t, (0, 1), (2,), {})
        expected = t.data.reshape(12, 5, order="F")
        assert np.array_equal(view, expected)
        assert view.strides[0] == t.data.itemsize

    def test_overlapping_modes_raise(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            merged_matrix_view(t, (0,), (0,), {1: 0})

    def test_uncovered_modes_raise(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(ShapeError):
            merged_matrix_view(t, (0,), (1,), {})

    def test_fixed_overlapping_free_raises(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            merged_matrix_view(t, (0,), (1,), {1: 0})

    def test_fixed_out_of_bounds_raises(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(IndexError):
            merged_matrix_view(t, (0,), (2,), {1: 3})

    def test_non_consecutive_merge_raises(self):
        t = DenseTensor.zeros((2, 3, 4, 5))
        with pytest.raises(LayoutError):
            merged_matrix_view(t, (0, 2), (1, 3), {})

    @settings(max_examples=60, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 4), min_size=3, max_size=5),
        layout=st.sampled_from([ROW_MAJOR, COL_MAJOR]),
        data=st.data(),
    )
    def test_property_view_equals_moveaxis_reshape(self, shape, layout, data):
        """Any legal (row-run, col-run, fixed) view equals the reference
        obtained by fancy indexing + reshape on a copy."""
        ndim = len(shape)
        t = DenseTensor(
            np.arange(int(np.prod(shape)), dtype=float).reshape(shape),
            layout,
        )
        # Choose two disjoint consecutive runs.
        starts = data.draw(
            st.tuples(st.integers(0, ndim - 1), st.integers(0, ndim - 1))
        )
        r0, c0 = starts
        r1 = data.draw(st.integers(r0, ndim - 1))
        rows = tuple(range(r0, r1 + 1))
        remaining = [m for m in range(ndim) if m not in rows]
        if not remaining:
            rows = rows[:-1]
            remaining = [ndim - 1]
        # column run: maximal consecutive run within remaining containing c0'
        c0 = data.draw(st.sampled_from(remaining))
        cols = [c0]
        while c0 + len(cols) in remaining and data.draw(st.booleans()):
            cols.append(c0 + len(cols))
        cols_t = tuple(cols)
        fixed = {
            m: data.draw(st.integers(0, shape[m] - 1))
            for m in range(ndim)
            if m not in rows and m not in cols_t
        }
        try:
            view = merged_matrix_view(t, rows, cols_t, fixed)
        except LayoutError:
            # Merge blocked by non-nesting strides (e.g. rows/cols interleave
            # around a fixed mode); that is legitimate, nothing to check.
            return
        # Reference: decode merged indices by storage-order odometer — the
        # smallest-stride mode of each run varies fastest.
        strides = t.strides

        def decode(m, run):
            index = {}
            for mode in sorted(run, key=lambda q: strides[q]):
                index[mode] = m % shape[mode]
                m //= shape[mode]
            return index

        n_rows = int(np.prod([shape[m] for m in rows]))
        n_cols = int(np.prod([shape[m] for m in cols_t]))
        assert view.shape == (n_rows, n_cols)
        for r in range(n_rows):
            for c in range(n_cols):
                full = dict(fixed)
                full.update(decode(r, rows))
                full.update(decode(c, cols_t))
                idx = tuple(full[m] for m in range(ndim))
                assert view[r, c] == t.data[idx]


class TestFiber:
    def test_mode0_fiber_row_major(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=5)
        f = fiber(t, 0, {1: 2, 2: 3})
        assert np.array_equal(f, t.data[:, 2, 3])
        assert np.shares_memory(f, t.data)

    def test_mode2_fiber_col_major(self):
        t = DenseTensor.random((3, 4, 5), COL_MAJOR, seed=6)
        f = fiber(t, 2, {0: 1, 1: 0})
        assert np.array_equal(f, t.data[1, 0, :])

    def test_fiber_writable(self):
        t = DenseTensor.zeros((2, 3))
        f = fiber(t, 1, {0: 1})
        f[:] = 4.0
        assert np.all(t.data[1] == 4.0)

    def test_wrong_fixed_set_raises(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(ShapeError):
            fiber(t, 0, {1: 0})

    def test_bad_mode_raises(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            fiber(t, 5, {0: 0})


class TestModeSlice:
    def test_frontal_slice(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=7)
        s = mode_slice(t, (0, 1), {2: 2})
        assert np.array_equal(s, t.data[:, :, 2])

    def test_non_adjacent_free_modes(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=8)
        s = mode_slice(t, (0, 2), {1: 1})
        assert np.array_equal(s, t.data[:, 1, :])

    def test_transposed_free_modes(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=9)
        s = mode_slice(t, (2, 0), {1: 1})
        assert np.array_equal(s, t.data[:, 1, :].T)

    def test_requires_exactly_two_free_modes(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(ShapeError):
            mode_slice(t, (0,), {1: 0, 2: 0})

    def test_wrong_fixed_cover_raises(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(ShapeError):
            mode_slice(t, (0, 1), {})


class TestSubtensorMatrix:
    @pytest.mark.parametrize("split", [1, 2, 3])
    def test_split_matches_reshape(self, split):
        t = DenseTensor.random((2, 3, 4, 5), ROW_MAJOR, seed=10)
        m = subtensor_matrix(t, split)
        rows = int(np.prod(t.shape[:split]))
        assert np.array_equal(m, t.data.reshape(rows, -1))

    def test_invalid_split_raises(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            subtensor_matrix(t, 0)
        with pytest.raises(ShapeError):
            subtensor_matrix(t, 2)
