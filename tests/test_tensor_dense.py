"""Unit tests for repro.tensor.dense.DenseTensor."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError


class TestConstruction:
    def test_wraps_c_contiguous_without_copy(self):
        arr = np.zeros((3, 4))
        t = DenseTensor(arr, ROW_MAJOR)
        assert t.data is arr or t.data.base is arr

    def test_copies_when_layout_mismatch(self):
        arr = np.zeros((3, 4), order="F")
        t = DenseTensor(arr, ROW_MAJOR)
        assert t.data.flags["C_CONTIGUOUS"]
        assert not np.shares_memory(t.data, arr)

    def test_forced_copy(self):
        arr = np.zeros((3, 4))
        t = DenseTensor(arr, ROW_MAJOR, copy=True)
        assert not np.shares_memory(t.data, arr)

    def test_coerces_to_float64(self):
        t = DenseTensor(np.arange(6, dtype=np.int32).reshape(2, 3))
        assert t.dtype == np.float64

    def test_zeros_and_empty_shapes(self):
        z = DenseTensor.zeros((2, 3, 4))
        assert z.shape == (2, 3, 4)
        assert np.all(z.data == 0.0)
        e = DenseTensor.empty((2, 2), COL_MAJOR)
        assert e.shape == (2, 2)
        assert e.data.flags["F_CONTIGUOUS"]

    def test_random_is_deterministic_per_seed(self):
        a = DenseTensor.random((3, 3), seed=42)
        b = DenseTensor.random((3, 3), seed=42)
        assert np.array_equal(a.data, b.data)

    def test_layout_string_accepted(self):
        t = DenseTensor.zeros((2, 2), "F")
        assert t.layout is COL_MAJOR


class TestProperties:
    def test_order_size_nbytes(self):
        t = DenseTensor.zeros((2, 3, 4))
        assert t.order == 3
        assert t.ndim == 3
        assert t.size == 24
        assert t.nbytes == 24 * 8

    def test_strides_row_major(self):
        t = DenseTensor.zeros((2, 3, 4), ROW_MAJOR)
        assert t.strides == (12, 4, 1)
        assert t.leading_mode == 2

    def test_strides_col_major(self):
        t = DenseTensor.zeros((2, 3, 4), COL_MAJOR)
        assert t.strides == (1, 2, 6)
        assert t.leading_mode == 0

    def test_repr_mentions_shape_and_layout(self):
        r = repr(DenseTensor.zeros((2, 3)))
        assert "2x3" in r and "ROW_MAJOR" in r


class TestIndexingAndConversion:
    def test_getitem_returns_views(self):
        t = DenseTensor.zeros((3, 4))
        view = t[1]
        view[:] = 7.0
        assert np.all(t.data[1] == 7.0)

    def test_setitem(self):
        t = DenseTensor.zeros((2, 2))
        t[0, 1] = 5.0
        assert t.data[0, 1] == 5.0

    def test_asarray_protocol(self):
        t = DenseTensor.zeros((2, 2))
        assert np.asarray(t).shape == (2, 2)

    def test_to_numpy_is_no_copy(self):
        t = DenseTensor.zeros((2, 2))
        assert t.to_numpy() is t.data


class TestStructuralOps:
    def test_copy_is_deep(self):
        t = DenseTensor.zeros((2, 2))
        c = t.copy()
        c[0, 0] = 1.0
        assert t.data[0, 0] == 0.0

    def test_with_layout_roundtrip_values(self):
        t = DenseTensor.random((3, 4, 5), seed=1)
        f = t.with_layout(COL_MAJOR)
        assert f.layout is COL_MAJOR
        assert np.array_equal(f.data, t.data)
        assert f.data.flags["F_CONTIGUOUS"]

    def test_permute_is_physical_copy(self):
        t = DenseTensor.random((3, 4, 5), seed=2)
        p = t.permute((2, 0, 1))
        assert p.shape == (5, 3, 4)
        assert not np.shares_memory(p.data, t.data)
        assert np.array_equal(p.data, np.transpose(t.data, (2, 0, 1)))

    def test_permute_validates(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            t.permute((0, 0))

    def test_reshape_copyfree_merges_trailing_modes(self):
        t = DenseTensor.random((2, 3, 4), seed=3)
        m = t.reshape_copyfree((2, 12))
        assert np.shares_memory(m, t.data)
        assert np.array_equal(m, t.data.reshape(2, 12))

    def test_reshape_copyfree_wrong_size_raises(self):
        t = DenseTensor.zeros((2, 3))
        with pytest.raises(ShapeError):
            t.reshape_copyfree((4, 2))


class TestAllclose:
    def test_allclose_true(self):
        t = DenseTensor.random((3, 3), seed=4)
        assert t.allclose(t.data.copy())

    def test_allclose_shape_mismatch_false(self):
        t = DenseTensor.zeros((2, 2))
        assert not t.allclose(np.zeros((2, 3)))

    def test_allclose_value_mismatch_false(self):
        t = DenseTensor.zeros((2, 2))
        assert not t.allclose(np.ones((2, 2)))
