"""Tests for the batched InTTM execution engine.

Covers the three layers the batched path threads together: the rank-3
strided views (``merged_batch_view`` / ``BatchViewFactory``), the batched
GEMM dispatch (``gemm_batched``), and the executor/plan/codegen plumbing
(``batch_modes``) — with the per-iteration executor and the einsum oracle
as references.
"""

import numpy as np
import pytest

from repro.core.codegen import compile_plan
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.partition import choose_batch_modes
from repro.core.plan import Strategy, TtmPlan
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.gemm.batched import batched_slices_blas_legal, gemm_batched
from repro.perf.profiler import track_hot_path
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.views import (
    BatchViewFactory,
    merged_batch_view,
    merged_matrix_view,
)
from repro.util.errors import PlanError, ShapeError, StrideError
from tests.helpers import ttm_oracle

# Orders 3-5, non-square extents, size-1 modes.
BATCH_SHAPES = [
    (3, 4, 5),
    (5, 3, 4),
    (2, 3, 4, 5),
    (4, 1, 3, 2),
    (2, 2, 3, 2, 2),
    (3, 2, 2, 2, 2),
]


def _case(shape, mode, j, layout, seed=0):
    rng = np.random.default_rng(seed)
    x = DenseTensor(rng.standard_normal(shape), layout)
    u = rng.standard_normal((j, shape[mode]))
    return x, u


class TestMergedBatchView:
    def test_stacks_matrix_views(self):
        """The 3-D view's slices are exactly the per-index 2-D views."""
        rng = np.random.default_rng(1)
        x = DenseTensor(rng.standard_normal((4, 5, 6, 7)), ROW_MAJOR)
        # mode=1 forward with comp=(3,): batch mode 2, outer mode 0 fixed.
        for i0 in range(4):
            x3 = merged_batch_view(x, (2,), (1,), (3,), {0: i0})
            assert x3.shape == (6, 5, 7)
            for i2 in range(6):
                expect = merged_matrix_view(x, (1,), (3,), {0: i0, 2: i2})
                assert np.array_equal(x3[i2], expect)

    def test_merges_multi_mode_batch_run(self):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((3, 4, 5, 6)), ROW_MAJOR)
        # mode=2 forward, comp=(3,): batch run (0, 1) merges into B=12.
        x3 = merged_batch_view(x, (0, 1), (2,), (3,), {})
        assert x3.shape == (12, 5, 6)
        b = 0
        for i0 in range(3):
            for i1 in range(4):
                expect = merged_matrix_view(x, (2,), (3,), {0: i0, 1: i1})
                assert np.array_equal(x3[b], expect)
                b += 1

    def test_is_a_view_not_a_copy(self):
        x = DenseTensor.zeros((3, 4, 5), ROW_MAJOR)
        x3 = merged_batch_view(x, (0,), (1,), (2,), {})
        x3[1, 2, 3] = 42.0
        assert x.data[1, 2, 3] == 42.0

    def test_empty_col_run_is_batched_fiber(self):
        rng = np.random.default_rng(3)
        x = DenseTensor(rng.standard_normal((3, 4, 5)), ROW_MAJOR)
        x3 = merged_batch_view(x, (0, 1), (2,), (), {})
        assert x3.shape == (12, 5, 1)
        assert np.array_equal(x3[0][:, 0], x.data[0, 0, :])

    def test_requires_batch_modes(self):
        x = DenseTensor.zeros((3, 4), ROW_MAJOR)
        with pytest.raises(ShapeError):
            merged_batch_view(x, (), (0,), (1,), {})

    def test_rejects_overlapping_groups(self):
        x = DenseTensor.zeros((3, 4, 5), ROW_MAJOR)
        with pytest.raises(ShapeError):
            merged_batch_view(x, (0,), (0,), (1,), {2: 0})

    def test_rejects_uncovered_modes(self):
        x = DenseTensor.zeros((3, 4, 5), ROW_MAJOR)
        with pytest.raises(ShapeError):
            merged_batch_view(x, (0,), (1,), (), {})

    def test_factory_matches_direct_views(self):
        rng = np.random.default_rng(4)
        x = DenseTensor(rng.standard_normal((4, 5, 6, 7)), COL_MAJOR)
        factory = BatchViewFactory(x, (1,), (2,), (0,), (3,))
        assert factory.batch_extent == 5
        for i3 in range(7):
            expect = merged_batch_view(x, (1,), (2,), (0,), {3: i3})
            assert np.array_equal(factory.view((i3,)), expect)


class TestGemmBatched:
    def test_matches_slice_loop(self):
        rng = np.random.default_rng(5)
        a = rng.standard_normal((6, 3, 4))
        b = rng.standard_normal((6, 4, 5))
        out = gemm_batched(a, b)
        for i in range(6):
            assert np.array_equal(out[i], a[i] @ b[i])

    def test_broadcasts_2d_operand(self):
        rng = np.random.default_rng(6)
        u = rng.standard_normal((3, 4))
        b = rng.standard_normal((5, 4, 6))
        out = gemm_batched(u, b)
        for i in range(5):
            assert np.array_equal(out[i], u @ b[i])

    @pytest.mark.parametrize("kernel", ["auto", "blas", "blocked", "reference"])
    def test_kernels_agree(self, kernel):
        rng = np.random.default_rng(7)
        a = rng.standard_normal((4, 3, 5))
        b = rng.standard_normal((4, 5, 2))
        expect = np.matmul(a, b)
        assert np.allclose(gemm_batched(a, b, kernel=kernel), expect)

    def test_writes_through_out(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((4, 3, 5))
        b = rng.standard_normal((4, 5, 2))
        out = np.empty((4, 3, 2))
        result = gemm_batched(a, b, out=out)
        assert result is out
        assert np.array_equal(out, np.matmul(a, b))

    def test_accumulate_adds_per_slice(self):
        rng = np.random.default_rng(9)
        a = rng.standard_normal((3, 2, 4))
        b = rng.standard_normal((3, 4, 5))
        out = np.ones((3, 2, 5))
        gemm_batched(a, b, out=out, accumulate=True)
        assert np.allclose(out, 1.0 + np.matmul(a, b))

    def test_accumulate_requires_out(self):
        a = np.zeros((2, 3, 4))
        b = np.zeros((2, 4, 5))
        with pytest.raises(ShapeError):
            gemm_batched(a, b, accumulate=True)

    def test_rejects_mismatched_batch(self):
        with pytest.raises(ShapeError):
            gemm_batched(np.zeros((2, 3, 4)), np.zeros((3, 4, 5)))

    def test_rejects_all_2d(self):
        with pytest.raises(ShapeError):
            gemm_batched(np.zeros((3, 4)), np.zeros((4, 5)))

    def test_blas_kernel_rejects_general_strides(self):
        base = np.zeros((4, 8, 8))
        # Both inner strides non-unit: not expressible slice-wise in BLAS.
        a = np.lib.stride_tricks.as_strided(
            base, shape=(4, 4, 4), strides=(512, 128, 16)
        )
        assert not batched_slices_blas_legal(a)
        b = np.zeros((4, 4, 3))
        with pytest.raises(StrideError):
            gemm_batched(a, b, kernel="blas")

    def test_auto_falls_back_on_general_strides(self):
        rng = np.random.default_rng(10)
        base = rng.standard_normal((4, 6, 6))
        a = base[:, ::2, ::2]  # strides (*, 2, 2) elements: not BLAS-legal
        b = rng.standard_normal((4, 3, 2))
        out = gemm_batched(a, b, kernel="auto")
        assert np.allclose(out, np.matmul(np.ascontiguousarray(a), b))


class TestPlanBatchModes:
    def test_default_plan_marks_maximal_suffix(self):
        plan = default_plan((9, 8, 7, 6), 1, 3, ROW_MAJOR, degree=1)
        assert plan.loop_modes == (0, 2)
        assert plan.batch_modes == (2,)  # 0 and 2 are not consecutive
        assert plan.outer_loop_modes == (0,)
        assert plan.batch_extent == 7
        assert plan.gemm_dispatch_count == 9

    def test_full_collapse_has_no_outer_loop(self):
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR, degree=1)
        assert plan.loop_modes == (0,)
        assert plan.batch_modes == (0,)
        assert plan.outer_loop_modes == ()
        assert plan.gemm_dispatch_count == 1

    def test_batched_false_disables(self):
        plan = default_plan((9, 8, 7), 2, 3, ROW_MAJOR, batched=False)
        assert plan.batch_modes == ()
        assert plan.gemm_dispatch_count == plan.loop_iterations

    def test_choose_batch_modes_stops_at_gap(self):
        # M_L = (0, 2): the innermost suffix (2,) stacks, extending to
        # (0, 2) would need the non-consecutive merge Lemma 4.1 forbids.
        assert choose_batch_modes((9, 8, 7, 6), ROW_MAJOR, 1, 3, (0, 2)) == (2,)
        assert choose_batch_modes((9, 8, 7, 6), ROW_MAJOR, 3, 3, (0, 1, 2)) == (
            0,
            1,
            2,
        )
        assert choose_batch_modes((9, 8, 7), ROW_MAJOR, 1, 3, ()) == ()

    def test_validation_rejects_non_suffix(self):
        with pytest.raises(PlanError):
            TtmPlan(
                shape=(9, 8, 7, 6),
                mode=1,
                j=3,
                layout=ROW_MAJOR,
                strategy=Strategy.FORWARD,
                component_modes=(3,),
                loop_modes=(0, 2),
                batch_modes=(0,),  # outermost, not the innermost suffix
            )

    def test_validation_rejects_non_consecutive(self):
        with pytest.raises(PlanError):
            TtmPlan(
                shape=(9, 8, 7, 6, 5),
                mode=1,
                j=3,
                layout=ROW_MAJOR,
                strategy=Strategy.FORWARD,
                component_modes=(4,),
                loop_modes=(0, 2, 3),
                batch_modes=(0, 2, 3),
            )

    def test_serialization_round_trips_batch_modes(self):
        plan = default_plan((9, 8, 7, 6), 1, 3, ROW_MAJOR, degree=1)
        assert plan.batch_modes
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_legacy_payload_defaults_to_unbatched(self):
        payload = plan_to_dict(default_plan((9, 8, 7), 1, 3, ROW_MAJOR))
        del payload["batch_modes"]
        assert plan_from_dict(payload).batch_modes == ()


class TestBatchedEquivalence:
    """Batched vs. per-iteration vs. definitional oracle, full matrix."""

    @pytest.mark.parametrize("shape", BATCH_SHAPES)
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_every_mode_and_degree(self, shape, layout):
        j = 4
        for mode in range(len(shape)):
            x, u = _case(shape, mode, j, layout, seed=hash(shape) % 997)
            oracle = ttm_oracle(x.data, u, mode)
            max_degree = max(
                mode, len(shape) - 1 - mode
            )  # whichever side the strategy uses
            for degree in range(0, max_degree + 1):
                try:
                    batched = default_plan(shape, mode, j, layout, degree=degree)
                    looped = default_plan(
                        shape, mode, j, layout, degree=degree, batched=False
                    )
                except PlanError:
                    continue  # degree out of range for this strategy
                y_b = ttm_inplace(x, u, plan=batched)
                y_l = ttm_inplace(x, u, plan=looped)
                np.testing.assert_allclose(
                    y_b.data, y_l.data, rtol=1e-12, atol=0
                )
                np.testing.assert_allclose(
                    y_b.data, oracle, rtol=1e-10, atol=1e-12
                )

    @pytest.mark.parametrize("kernel", ["auto", "blas", "blocked"])
    def test_kernels_agree_with_batching(self, kernel):
        shape, mode, j = (5, 6, 7, 4), 1, 3
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=11)
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=1, kernel=kernel)
        assert plan.batch_modes
        y = ttm_inplace(x, u, plan=plan)
        np.testing.assert_allclose(
            y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
        )

    @pytest.mark.parametrize("p_l,p_c", [(2, 1), (1, 2), (3, 2), (4, 1)])
    def test_threaded_batched_execution(self, p_l, p_c):
        shape, mode, j = (6, 5, 4, 3), 1, 2
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=12)
        plan = default_plan(
            shape, mode, j, ROW_MAJOR, degree=1,
            loop_threads=p_l, kernel_threads=p_c,
        )
        y = ttm_inplace(x, u, plan=plan)
        np.testing.assert_allclose(
            y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
        )

    def test_batch_chunking_when_no_outer_loop(self):
        # Full collapse + P_L > 1: the batch itself is split over workers.
        shape, mode, j = (8, 7, 3), 2, 4
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=13)
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=0, loop_threads=3)
        assert plan.batch_modes and not plan.outer_loop_modes
        y = ttm_inplace(x, u, plan=plan)
        np.testing.assert_allclose(
            y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
        )

    def test_accumulate_through_batched_path(self):
        shape, mode, j = (4, 5, 6), 1, 3
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=14)
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=1)
        assert plan.batch_modes
        out = DenseTensor.zeros(plan.out_shape, ROW_MAJOR)
        out.data[...] = 1.0
        ttm_inplace(x, u, plan=plan, out=out, accumulate=True)
        np.testing.assert_allclose(
            out.data, 1.0 + ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
        )

    def test_transpose_u_through_batched_path(self):
        shape, mode, j = (4, 5, 6), 1, 3
        rng = np.random.default_rng(15)
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        ut = rng.standard_normal((shape[mode], j))  # (I_n, J)
        y = ttm_inplace(x, ut, mode, transpose_u=True)
        np.testing.assert_allclose(
            y.data, ttm_oracle(x.data, ut.T, mode), rtol=1e-10, atol=1e-12
        )

    def test_unbatched_plan_falls_back(self):
        """An explicitly unbatched plan takes the per-iteration path."""
        shape, mode, j = (5, 4, 6), 1, 3
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=16)
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=1, batched=False)
        with track_hot_path() as counters:
            y = ttm_inplace(x, u, plan=plan)
        assert counters.batched_calls == 0
        assert counters.gemm_calls == plan.loop_iterations
        np.testing.assert_allclose(
            y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
        )


class TestHotCounters:
    def test_batched_reduces_dispatches_by_batch_factor(self):
        shape, mode, j = (8, 6, 7, 4), 1, 3
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=17)
        batched = default_plan(shape, mode, j, ROW_MAJOR, degree=1)
        looped = default_plan(shape, mode, j, ROW_MAJOR, degree=1, batched=False)
        assert batched.batch_modes == (2,)
        with track_hot_path() as c_batched:
            ttm_inplace(x, u, plan=batched)
        with track_hot_path() as c_looped:
            ttm_inplace(x, u, plan=looped)
        assert c_looped.dispatches == looped.loop_iterations == 56
        assert c_batched.dispatches == batched.gemm_dispatch_count == 8
        # Same total GEMM work, fewer interpreter crossings.
        assert c_batched.total_slices == c_looped.total_slices == 56
        assert c_batched.max_batch == batched.batch_extent == 7

    def test_counters_off_by_default(self):
        from repro.perf.profiler import active_hot_counters

        assert active_hot_counters() is None

    def test_view_time_is_recorded(self):
        shape, mode, j = (6, 5, 4), 1, 2
        x, u = _case(shape, mode, j, ROW_MAJOR, seed=18)
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=1)
        with track_hot_path() as counters:
            ttm_inplace(x, u, plan=plan)
        assert counters.view_seconds >= 0.0
        assert counters.dispatches > 0


class TestGeneratedBatched:
    """The code generator emits the same batched engine."""

    @pytest.mark.parametrize("shape", BATCH_SHAPES)
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_generated_matches_oracle(self, shape, layout):
        j = 3
        for mode in range(len(shape)):
            for degree in [1, 2]:
                try:
                    plan = default_plan(shape, mode, j, layout, degree=degree)
                except PlanError:
                    continue
                x, u = _case(shape, mode, j, layout, seed=19)
                fn = compile_plan(plan)
                y = DenseTensor.empty(plan.out_shape, layout)
                fn(x.data, u, y.data)
                np.testing.assert_allclose(
                    y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
                )

    def test_partial_collapse_source_uses_strided_batch(self):
        from repro.core.codegen import generate_source

        plan = default_plan((9, 8, 7, 6), 1, 3, ROW_MAJOR, degree=1)
        src = generate_source(plan)
        assert "_as_strided(" in src
        assert "np.matmul(u, x3, out=y3)" in src
