"""Tests for the design-space exploration engine (repro.perf.dse)."""

import dataclasses
from types import SimpleNamespace

import numpy as np
import pytest

from repro.autotune.store import PlanStore
from repro.core.estimator import ParameterEstimator
from repro.core.intensli import InTensLi
from repro.core.partition import PAPER_THRESHOLDS, Thresholds
from repro.core.tuner import enumerate_plans
from repro.perf.dse import (
    CALIBRATION_VERSION,
    MAX_STORED_OBSERVATIONS,
    CalibrationAccumulator,
    CalibrationRecord,
    DseCase,
    DseConfig,
    DseObservation,
    explore,
    fit_calibration,
    fit_platform_inputs,
    fit_pth,
    fit_thresholds,
    load_calibration_record,
    merge_observations,
    observation_from_plan,
    run_calibration,
    store_calibration,
)
from repro.util.errors import BenchmarkError, SchemaMismatchError

FAKE_INFO = SimpleNamespace(
    physical_cores=4,
    logical_cpus=8,
    llc_bytes=8 * 1024**2,
    cpu_model="test-cpu",
    fingerprint=lambda: "test-fp",
)


def obs(
    ws,
    rate,
    kernel_threads=1,
    loop_threads=1,
    intensity=None,
    pinned=False,
    seconds=0.01,
):
    return DseObservation(
        m=16,
        k=64,
        n=max(1, ws // 8),
        kernel_threads=kernel_threads,
        loop_threads=loop_threads,
        working_set_bytes=ws,
        seconds=seconds,
        kernel_gflops=rate,
        intensity=intensity,
        pinned=pinned,
    )


def plan_for(shape=(6, 6, 6), mode=0, j=4, degree=None):
    plans = enumerate_plans(shape, mode, j, max_threads=1, kernels=("blas",))
    if degree is None:
        return plans[0]
    return next(p for p in plans if p.degree == degree)


class TestObservation:
    def test_round_trip(self):
        o = obs(4096, 12.5, intensity=3.2, pinned=True)
        assert DseObservation.from_dict(o.to_dict()) == o

    def test_round_trip_none_intensity(self):
        o = obs(4096, 12.5)
        assert DseObservation.from_dict(o.to_dict()).intensity is None

    def test_malformed_payload_raises(self):
        with pytest.raises(BenchmarkError):
            DseObservation.from_dict({"m": 16})
        with pytest.raises(BenchmarkError):
            DseObservation.from_dict({**obs(64, 1.0).to_dict(), "k": "bad"})


class TestObservationFromPlan:
    def test_inverts_the_cost_model(self):
        plan = plan_for((8, 8, 8, 8), 0, 8, degree=2)
        seconds = 0.02
        o = observation_from_plan(plan, seconds)
        iterations = max(1, plan.loop_iterations)
        kernel_seconds = seconds * plan.loop_threads / iterations
        assert o.kernel_gflops == pytest.approx(
            plan.kernel_flops / kernel_seconds / 1e9
        )
        assert (o.m, o.k, o.n) == plan.kernel_shape
        assert o.working_set_bytes == plan.kernel_working_set_bytes
        assert o.source == "session"

    def test_rejects_nonpositive_seconds(self):
        with pytest.raises(BenchmarkError):
            observation_from_plan(plan_for(), 0.0)


class TestFitThresholds:
    def test_window_spans_near_peak_observations(self):
        scatter = [
            obs(1_000, 5.0),   # slow: below kappa * peak
            obs(10_000, 20.0),
            obs(50_000, 25.0),  # peak
            obs(200_000, 21.0),
            obs(900_000, 4.0),  # slow again
        ]
        fitted = fit_thresholds(scatter, kappa=0.8)
        assert fitted[1].msth_bytes == 10_000
        assert fitted[1].mlth_bytes == 200_000

    def test_groups_by_kernel_threads(self):
        scatter = [obs(s, r) for s, r in [(1e3, 10), (1e4, 12), (1e5, 11)]]
        scatter += [
            obs(s, r, kernel_threads=4)
            for s, r in [(1e3, 30), (1e4, 40), (1e5, 35)]
        ]
        scatter = [dataclasses.replace(o, working_set_bytes=int(o.working_set_bytes))
                   for o in scatter]
        fitted = fit_thresholds(scatter)
        assert set(fitted) == {1, 4}

    def test_too_few_distinct_sizes_raises(self):
        with pytest.raises(BenchmarkError):
            fit_thresholds([obs(1000, 10.0), obs(2000, 11.0)])

    def test_same_size_repeated_does_not_count(self):
        with pytest.raises(BenchmarkError):
            fit_thresholds([obs(1000, r) for r in (9.0, 10.0, 11.0, 12.0)])

    def test_kappa_validated(self):
        with pytest.raises(ValueError):
            fit_thresholds([obs(1000, 1.0)], kappa=1.5)


class TestFitPth:
    def test_crossover_found(self):
        # Loops win on small kernels, the kernel pool wins past 64 KiB.
        scatter = [
            obs(8_000, 30.0, loop_threads=4),
            obs(8_100, 10.0, kernel_threads=4),
            obs(100_000, 20.0, loop_threads=4),
            obs(101_000, 28.0, kernel_threads=4),
        ]
        assert fit_pth(scatter) == 101_000

    def test_single_thread_sweep_gives_none(self):
        assert fit_pth([obs(1000, 10.0), obs(2000, 12.0)]) is None

    def test_kernel_never_wins(self):
        scatter = [
            obs(8_000, 30.0, loop_threads=4),
            obs(8_100, 10.0, kernel_threads=4),
        ]
        assert fit_pth(scatter) == 2 * 8_100


class TestFitPlatformInputs:
    def test_pinned_single_thread_scales_by_cores(self):
        peak, _ = fit_platform_inputs(
            [obs(1000, 10.0, pinned=True)], info=FAKE_INFO
        )
        assert peak == pytest.approx(40.0)

    def test_unpinned_rate_taken_as_is(self):
        peak, _ = fit_platform_inputs([obs(1000, 10.0)], info=FAKE_INFO)
        assert peak == pytest.approx(10.0)

    def test_bandwidth_from_memory_bound_observations(self):
        big = FAKE_INFO.llc_bytes * 2
        scatter = [
            obs(big, 5.0, intensity=2.0),       # 5*8/2 = 20 GB/s
            obs(big + 8, 6.0, intensity=2.0),   # 24 GB/s
            obs(big + 16, 7.0, intensity=2.0),  # 28 GB/s
            obs(1000, 50.0, intensity=2.0),     # cache-resident: excluded
        ]
        _, bw = fit_platform_inputs(scatter, info=FAKE_INFO)
        assert bw == pytest.approx(24.0)

    def test_none_when_nothing_qualifies(self):
        peak, bw = fit_platform_inputs([], info=FAKE_INFO)
        assert peak is None and bw is None


class TestCalibrationRecord:
    def record(self, **overrides):
        base = dict(
            fingerprint="fp",
            thresholds={1: Thresholds(1000, 50_000), 4: Thresholds(2000, 90_000)},
            pth_bytes=65_536,
            peak_gflops=40.0,
            bandwidth_gbs=20.0,
            samples=17,
        )
        base.update(overrides)
        return CalibrationRecord(**base)

    def test_round_trip(self):
        r = self.record()
        again = CalibrationRecord.from_dict(r.to_dict())
        assert again == r
        assert again.digest() == r.digest()

    def test_version_mismatch_rejected(self):
        payload = self.record().to_dict()
        payload["version"] = CALIBRATION_VERSION + 1
        with pytest.raises(SchemaMismatchError):
            CalibrationRecord.from_dict(payload)

    def test_malformed_payload_raises(self):
        payload = self.record().to_dict()
        payload["thresholds"] = {"1": {"msth_bytes": "bad"}}
        with pytest.raises(BenchmarkError):
            CalibrationRecord.from_dict(payload)

    def test_digest_distinguishes_fits(self):
        assert self.record().digest() != self.record(samples=18).digest()

    def test_thresholds_for_picks_largest_eligible(self):
        r = self.record()
        assert r.thresholds_for(16, 4) == r.thresholds[4]
        assert r.thresholds_for(16, 2) == r.thresholds[1]

    def test_thresholds_for_under_budget_falls_to_smallest(self):
        r = self.record(thresholds={8: Thresholds(1000, 2000)})
        assert r.thresholds_for(16, 1) == r.thresholds[8]

    def test_thresholds_for_empty_record_is_none(self):
        assert self.record(thresholds={}).thresholds_for(16, 4) is None

    def test_platform_needs_both_figures(self):
        assert self.record(peak_gflops=None).platform(FAKE_INFO) is None
        assert self.record(bandwidth_gbs=None).platform(FAKE_INFO) is None
        platform = self.record().platform(FAKE_INFO)
        assert platform.peak_gflops == 40.0
        assert platform.bandwidth_gbs == 20.0
        assert platform.cores == FAKE_INFO.physical_cores

    def test_summary_rows_render(self):
        rows = self.record().summary_rows()
        labels = [label for label, _ in rows]
        assert "PTH" in labels and "samples" in labels


class TestFitCalibration:
    def scatter(self):
        return [
            obs(1_000, 5.0, pinned=True),
            obs(10_000, 20.0, pinned=True),
            obs(50_000, 25.0, pinned=True),
            obs(200_000, 21.0, pinned=True),
        ]

    def test_fits_everything_available(self):
        record = fit_calibration(
            self.scatter(), fingerprint="fp", info=FAKE_INFO
        )
        assert record.fingerprint == "fp"
        assert 1 in record.thresholds
        assert record.peak_gflops == pytest.approx(100.0)  # 25 * 4 cores
        assert record.bandwidth_gbs is None  # nothing memory-bound
        assert record.pth_bytes is None  # single-thread sweep
        assert record.samples == 4

    def test_unfittable_scatter_raises(self):
        with pytest.raises(BenchmarkError):
            fit_calibration([obs(1000, 1.0)], info=FAKE_INFO)


class TestStorePersistence:
    def store(self, tmp_path):
        return PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")

    def test_round_trip(self, tmp_path):
        store = self.store(tmp_path)
        record = fit_calibration(
            [obs(s, r) for s, r in [(1000, 5), (10_000, 20), (100_000, 18)]],
            fingerprint="fp",
            info=FAKE_INFO,
        )
        store_calibration(store, record, [obs(1000, 5.0)])
        again, observations = load_calibration_record(store)
        assert again == record
        assert len(observations) == 1

    def test_missing_section_loads_empty(self, tmp_path):
        record, observations = load_calibration_record(self.store(tmp_path))
        assert record is None and observations == []

    def test_stale_version_downgrades_to_none(self, tmp_path):
        store = self.store(tmp_path)
        store.save_calibration(
            {"record": {"version": CALIBRATION_VERSION + 1}, "observations": []}
        )
        record, observations = load_calibration_record(store)
        assert record is None and observations == []

    def test_entry_save_preserves_calibration(self, tmp_path):
        store = self.store(tmp_path)
        record = fit_calibration(
            [obs(s, r) for s, r in [(1000, 5), (10_000, 20), (100_000, 18)]],
            info=FAKE_INFO,
        )
        store_calibration(store, record)
        store.save({"some-key": {"plan": {}, "seconds": 1.0}})
        again, _ = load_calibration_record(store)
        assert again == record

    def test_calibration_save_preserves_entries(self, tmp_path):
        store = self.store(tmp_path)
        entries = {"some-key": {"plan": {"shape": [2, 2]}, "seconds": 1.0}}
        store.save(entries)
        store.save_calibration({"record": None, "observations": []})
        assert store.load() == entries

    def test_observation_cap(self, tmp_path):
        store = self.store(tmp_path)
        record = fit_calibration(
            [obs(s, r) for s, r in [(1000, 5), (10_000, 20), (100_000, 18)]],
            info=FAKE_INFO,
        )
        flood = [obs(1000 + i, 1.0) for i in range(MAX_STORED_OBSERVATIONS + 40)]
        store_calibration(store, record, flood)
        _, observations = load_calibration_record(store)
        assert len(observations) == MAX_STORED_OBSERVATIONS
        assert observations[-1] == flood[-1]  # newest kept


class TestMergeObservations:
    def test_caps_and_keeps_newest(self):
        old = [obs(1000 + i, 1.0) for i in range(MAX_STORED_OBSERVATIONS)]
        new = [obs(9_999_999, 2.0)]
        merged = merge_observations(old, new)
        assert len(merged) == MAX_STORED_OBSERVATIONS
        assert merged[-1] == new[0]
        assert old[0] not in merged


class TestEstimatorConsultsCalibration:
    def calibrated(self):
        window = Thresholds(1234, 56_789)
        record = CalibrationRecord(fingerprint="fp", thresholds={1: window})
        return record, window

    def test_calibration_takes_precedence(self):
        record, window = self.calibrated()
        est = ParameterEstimator(max_threads=1, calibration=record)
        assert est.thresholds_for(16) == window

    def test_paper_defaults_without_calibration(self):
        assert ParameterEstimator(max_threads=1).thresholds_for(16) \
            == PAPER_THRESHOLDS

    def test_empty_record_falls_back(self):
        record = CalibrationRecord(fingerprint="fp")
        est = ParameterEstimator(max_threads=1, calibration=record)
        assert est.thresholds_for(16) == PAPER_THRESHOLDS

    def test_swapping_records_invalidates_cache(self):
        record, window = self.calibrated()
        est = ParameterEstimator(max_threads=1, calibration=record)
        assert est.thresholds_for(16) == window
        other = CalibrationRecord(
            fingerprint="fp", thresholds={1: Thresholds(999, 888_888)}
        )
        est.calibration = other
        assert est.thresholds_for(16) == other.thresholds[1]
        est.calibration = None
        assert est.thresholds_for(16) == PAPER_THRESHOLDS


class TestAttachCalibration:
    def test_attach_sets_estimator_and_pth(self):
        lib = InTensLi()
        record = CalibrationRecord(
            fingerprint="fp",
            thresholds={1: Thresholds(1000, 50_000)},
            pth_bytes=123_456,
        )
        lib.attach_calibration(record)
        assert lib.estimator.calibration is record
        assert lib.estimator.pth_bytes == 123_456
        assert lib.estimator.thresholds_for(16) == record.thresholds[1]

    def test_fitted_platform_rebuilds_profile(self):
        lib = InTensLi()
        record = CalibrationRecord(
            fingerprint="fp",
            thresholds={1: Thresholds(1000, 50_000)},
            peak_gflops=99.0,
            bandwidth_gbs=11.0,
        )
        lib.attach_calibration(record)
        assert lib.platform.peak_gflops == 99.0
        assert lib.estimator.profile is lib.profile

    def test_detach_restores_paper_defaults(self):
        lib = InTensLi()
        lib.attach_calibration(
            CalibrationRecord(
                fingerprint="fp", thresholds={1: Thresholds(1000, 50_000)}
            )
        )
        lib.attach_calibration(None)
        assert lib.estimator.calibration is None

    def test_attached_plans_still_valid(self):
        lib = InTensLi()
        lib.attach_calibration(
            CalibrationRecord(
                fingerprint="fp",
                thresholds={1: Thresholds(8 * 1024, 512 * 1024)},
            )
        )
        plan = lib.plan((12, 12, 12, 12), 0, 8)
        assert plan.degree >= 1


class TestExplore:
    def config(self, **overrides):
        base = dict(
            cases=(DseCase(shape=(4, 4, 4), mode=0, j=4),),
            min_seconds=0.0005,
            max_seconds=10.0,
            simulate_traffic=False,
        )
        base.update(overrides)
        return DseConfig(**base)

    def test_observes_every_plan_within_budget(self):
        config = self.config()
        observations = explore(config)
        plans = enumerate_plans((4, 4, 4), 0, 4, max_threads=1)
        assert len(observations) == len(plans)
        for o in observations:
            assert o.seconds > 0 and o.kernel_gflops > 0
            assert o.source == "dse"

    def test_budget_truncates(self):
        observations = explore(self.config(max_seconds=1e-9))
        assert observations == []

    def test_traffic_simulation_attaches_intensity(self):
        observations = explore(self.config(simulate_traffic=True))
        assert any(o.intensity is not None for o in observations)

    def test_config_validation(self):
        with pytest.raises(BenchmarkError):
            DseConfig(cases=())
        with pytest.raises(BenchmarkError):
            self.config(max_seconds=0.0)


class TestRunCalibration:
    def test_sweeps_fits_and_persists(self, tmp_path):
        store = PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")
        config = DseConfig(
            cases=(
                DseCase(shape=(4, 4, 4), mode=0, j=4),
                DseCase(shape=(6, 6, 6), mode=0, j=4),
                DseCase(shape=(8, 8, 8), mode=0, j=4),
            ),
            min_seconds=0.0005,
            max_seconds=20.0,
            simulate_traffic=False,
        )
        record = run_calibration(store, config=config)
        assert record.samples > 0
        assert record.fingerprint == "fp"
        again, observations = load_calibration_record(store)
        assert again == record
        assert len(observations) == record.samples

    def test_empty_sweep_raises(self, tmp_path):
        store = PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")
        config = DseConfig(
            cases=(DseCase(shape=(4, 4, 4), mode=0, j=4),),
            max_seconds=1e-9,
            simulate_traffic=False,
        )
        with pytest.raises(BenchmarkError):
            run_calibration(store, config=config)


class TestAccumulator:
    def accumulator(self, tmp_path, **overrides):
        store = PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")
        base = dict(min_samples=4, refit_every=2, info=FAKE_INFO)
        base.update(overrides)
        return CalibrationAccumulator(store, **base)

    def feed(self, acc, shapes=((4, 4, 4), (6, 6, 6), (8, 8, 8))):
        for shape in shapes:
            for plan in enumerate_plans(shape, 0, 4, max_threads=1):
                acc.observe(plan, 0.001)

    def test_starts_cold_without_store_state(self, tmp_path):
        acc = self.accumulator(tmp_path)
        assert acc.record is None and acc.observations == []

    def test_refit_waits_for_min_samples(self, tmp_path):
        acc = self.accumulator(tmp_path, min_samples=100)
        self.feed(acc)
        assert acc.maybe_refit() is None

    def test_refit_fits_and_persists(self, tmp_path):
        acc = self.accumulator(tmp_path)
        self.feed(acc)
        record = acc.maybe_refit()
        assert record is not None
        assert record.source == "session"
        assert acc.record is record
        persisted, _ = load_calibration_record(acc.store)
        assert persisted == record

    def test_unfittable_data_defers_without_raising(self, tmp_path):
        acc = self.accumulator(tmp_path)
        plan = plan_for((4, 4, 4), 0, 4)
        for _ in range(6):  # plenty of samples, but one working set
            acc.observe(plan, 0.001)
        assert acc.maybe_refit() is None
        assert acc._new_since_fit == 0  # deferred, not retried every call

    def test_next_process_starts_warm(self, tmp_path):
        acc = self.accumulator(tmp_path)
        self.feed(acc)
        record = acc.maybe_refit()
        fresh = self.accumulator(tmp_path)
        assert fresh.record == record
        assert len(fresh.observations) == len(acc.observations)

    def test_observation_cap(self, tmp_path):
        acc = self.accumulator(tmp_path)
        plan = plan_for((4, 4, 4), 0, 4)
        for _ in range(MAX_STORED_OBSERVATIONS + 25):
            acc.observe(plan, 0.001)
        assert len(acc.observations) == MAX_STORED_OBSERVATIONS


class TestSessionCalibration:
    def session(self, tmp_path, **overrides):
        from repro.autotune.session import AutotuneSession

        base = dict(
            path=str(tmp_path / "plans.json"),
            calibrate=True,
            calibration_min_samples=4,
            calibration_refit_every=2,
        )
        base.update(overrides)
        session = AutotuneSession(**base)
        session._measure = lambda plan, x, u: 0.001
        return session

    def run_traffic(self, session):
        rng = np.random.default_rng(0)
        for side in (4, 6, 8):
            shape = (side, side, side)
            from repro.tensor.dense import DenseTensor

            x = DenseTensor(rng.standard_normal(shape))
            u = rng.standard_normal((4, side))
            session.ttm(x, u, 0)

    def test_calibrate_implies_refinement(self, tmp_path):
        assert self.session(tmp_path).refine

    def test_accumulates_and_adopts_refit(self, tmp_path):
        session = self.session(tmp_path)
        self.run_traffic(session)
        record = session.calibration
        assert record is not None
        assert record.source == "session"
        assert session.lib.estimator.calibration is record

    def test_persisted_record_attaches_on_next_session(self, tmp_path):
        session = self.session(tmp_path)
        self.run_traffic(session)
        fitted = session.calibration
        session.save()
        fresh = self.session(tmp_path)
        assert fresh.calibration == fitted
        assert fresh.lib.estimator.calibration == fitted

    def test_plain_session_has_no_accumulator(self, tmp_path):
        from repro.autotune.session import AutotuneSession

        session = AutotuneSession(path=str(tmp_path / "plans.json"))
        assert session.calibration is None
