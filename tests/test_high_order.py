"""High-order stress: orders 6-7, where index bookkeeping goes to die.

The paper evaluates up to order 5; the machinery generalizes to any
order, and these tests hold it to that across every implementation and
both layouts — small extents keep the flop counts trivial while the
mode arithmetic (partitioning, merging, loop order, strategy fallback)
is exercised at full depth.
"""

import numpy as np
import pytest

import repro
from repro.core import InTensLi, enumerate_plans
from repro.core.inttm import ttm_inplace
from repro.decomp import hooi, tt_svd
from repro.decomp.tensor_train import tt_error
from repro.sparse import SparseTensor, ttm_sparse
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from tests.helpers import ttm_oracle

SHAPE6 = (3, 2, 4, 2, 3, 2)
SHAPE7 = (2, 3, 2, 2, 3, 2, 2)


class TestOrder6:
    @pytest.mark.parametrize("mode", range(6))
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_all_modes_all_layouts(self, mode, layout):
        rng = np.random.default_rng(mode)
        x = DenseTensor(rng.standard_normal(SHAPE6), layout)
        u = rng.standard_normal((2, SHAPE6[mode]))
        expect = ttm_oracle(x.data, u, mode)
        assert np.allclose(ttm_inplace(x, u, mode).data, expect)
        assert np.allclose(repro.ttm(x, u, mode).data, expect)
        assert np.allclose(repro.ttm_copy(x, u, mode).data, expect)

    def test_every_enumerated_plan_correct(self):
        rng = np.random.default_rng(60)
        x = DenseTensor(rng.standard_normal(SHAPE6))
        mode = 2
        u = rng.standard_normal((2, SHAPE6[mode]))
        expect = ttm_oracle(x.data, u, mode)
        plans = enumerate_plans(SHAPE6, mode, 2, ROW_MAJOR, 1)
        assert len(plans) == 3  # degrees 1..3 (modes 3, 4, 5)
        for plan in plans:
            assert np.allclose(
                ttm_inplace(x, u, plan=plan).data, expect
            ), plan.describe()

    def test_sparse_ttm_order6(self):
        rng = np.random.default_rng(61)
        dense = np.where(
            rng.random(SHAPE6) < 0.2, rng.standard_normal(SHAPE6), 0.0
        )
        x = SparseTensor.from_dense(dense)
        u = rng.standard_normal((2, SHAPE6[3]))
        got = ttm_sparse(x, u, 3)
        assert np.allclose(got.to_dense().data, ttm_oracle(dense, u, 3))

    def test_tucker_order6(self):
        x = repro.low_rank_tensor(SHAPE6, 2, seed=62)
        result = hooi(x, 2, max_iterations=2, tolerance=0.0)
        assert result.fit > 0.999
        assert result.core.shape == (2,) * 6

    def test_tensor_train_order6(self):
        x = repro.random_tensor(SHAPE6, seed=63)
        tt = tt_svd(x)
        assert tt_error(x, tt) < 1e-10


class TestOrder7:
    @pytest.mark.parametrize("mode", [0, 3, 6])
    def test_facade_order7(self, mode):
        rng = np.random.default_rng(70 + mode)
        lib = InTensLi()
        x = DenseTensor(rng.standard_normal(SHAPE7))
        u = rng.standard_normal((2, SHAPE7[mode]))
        y = lib.ttm(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_generated_code_compiles_order7(self):
        from repro.core.codegen import compile_plan
        from repro.core.inttm import default_plan

        plan = default_plan(SHAPE7, 3, 2, ROW_MAJOR, degree=2)
        fn = compile_plan(plan)
        rng = np.random.default_rng(71)
        x = DenseTensor(rng.standard_normal(SHAPE7))
        u = rng.standard_normal((2, SHAPE7[3]))
        y = DenseTensor.empty(plan.out_shape, ROW_MAJOR)
        fn(x.data, u, y.data)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 3))

    def test_chain_over_all_seven_modes(self):
        from repro.core.chain import ChainStep, ttm_chain

        rng = np.random.default_rng(72)
        x = DenseTensor(rng.standard_normal(SHAPE7))
        steps = [
            ChainStep(m, rng.standard_normal((2, s)))
            for m, s in enumerate(SHAPE7)
        ]
        y = ttm_chain(x, steps, backend=ttm_inplace)
        expect = x.data
        for step in steps:
            expect = ttm_oracle(expect, step.matrix, step.mode)
        assert np.allclose(y.data, expect)
        assert y.shape == (2,) * 7
