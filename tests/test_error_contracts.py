"""Error-message contracts: failures must tell the user what to do.

A performance library's errors are part of its API: the stride error
must point at the general-stride kernel, the merge error at the
contiguity requirement, the plan error at the offending field.  These
tests pin the actionable content of the key messages.
"""

import numpy as np
import pytest

from repro.core.plan import Strategy, TtmPlan
from repro.gemm import gemm_blas
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import ROW_MAJOR
from repro.tensor.views import merged_matrix_view
from repro.util.errors import LayoutError, PlanError, StrideError


class TestStrideErrors:
    def test_blas_error_names_the_alternative_kernel(self):
        a = np.zeros((12, 12))[::2, ::3]
        with pytest.raises(StrideError) as exc:
            gemm_blas(a, np.zeros((4, 2)))
        message = str(exc.value)
        assert "blocked" in message  # tells the user what to use instead
        assert "strides" in message


class TestMergeErrors:
    def test_non_consecutive_merge_cites_lemma(self):
        t = DenseTensor.zeros((2, 3, 4, 5))
        with pytest.raises(LayoutError) as exc:
            merged_matrix_view(t, (0, 2), (1, 3), {})
        assert "consecutive" in str(exc.value)
        assert "Lemma 4.1" in str(exc.value)

    def test_uncovered_modes_lists_them(self):
        t = DenseTensor.zeros((2, 3, 4))
        with pytest.raises(Exception) as exc:
            merged_matrix_view(t, (0,), (1,), {})
        assert "cover" in str(exc.value)


class TestPlanErrors:
    def test_bad_component_run_names_the_modes(self):
        with pytest.raises(PlanError) as exc:
            TtmPlan(
                shape=(4, 5, 6, 7),
                mode=1,
                j=2,
                layout=ROW_MAJOR,
                strategy=Strategy.FORWARD,
                component_modes=(2,),  # does not reach the last mode
                loop_modes=(0, 3),
            )
        assert "rightmost" in str(exc.value)

    def test_cover_violation_reports_sets(self):
        with pytest.raises(PlanError) as exc:
            TtmPlan(
                shape=(4, 5, 6),
                mode=1,
                j=2,
                layout=ROW_MAJOR,
                strategy=Strategy.FORWARD,
                component_modes=(2,),
                loop_modes=(),
            )
        message = str(exc.value)
        assert "M_C" in message and "M_L" in message


class TestTypeErrors:
    def test_ndarray_input_suggests_wrapping(self):
        from repro.core.inttm import ttm_inplace

        with pytest.raises(TypeError) as exc:
            ttm_inplace(np.zeros((3, 4)), np.zeros((2, 3)), 0)
        assert "DenseTensor" in str(exc.value)
        assert "layout" in str(exc.value)
