"""Tests for plan enumeration and the exhaustive tuner (figure 12)."""

import numpy as np
import pytest

from repro.core.inttm import ttm_inplace
from repro.core.tuner import ExhaustiveTuner, enumerate_plans
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from tests.helpers import ttm_oracle


class TestEnumeratePlans:
    def test_single_thread_space_is_degrees(self):
        plans = enumerate_plans((10, 10, 10, 10, 10), 0, 4, ROW_MAJOR, 1)
        assert len(plans) == 4  # degrees 1..4
        assert sorted(p.degree for p in plans) == [1, 2, 3, 4]

    def test_multi_thread_space_doubles(self):
        plans = enumerate_plans((10, 10, 10, 10, 10), 0, 4, ROW_MAJOR, 8)
        assert len(plans) == 8  # 4 degrees x 2 allocations
        allocations = {(p.loop_threads, p.kernel_threads) for p in plans}
        assert allocations == {(8, 1), (1, 8)}

    def test_paper_sized_space(self):
        """Mode-1 (0-based: 0) on a 5th-order tensor with 2 kernels x
        2 allocations x 4 degrees = 16 configs, the paper's count."""
        plans = enumerate_plans(
            (10,) * 5, 0, 4, ROW_MAJOR, 8, kernels=("blas", "blocked")
        )
        assert len(plans) == 16

    def test_last_mode_enumerates_backward_plans(self):
        plans = enumerate_plans((10, 10, 10), 2, 4, ROW_MAJOR, 1)
        assert sorted(p.degree for p in plans) == [1, 2]
        assert all(p.component_modes[0] == 0 for p in plans)

    def test_order1_gives_fiber_plan(self):
        plans = enumerate_plans((10,), 0, 4, ROW_MAJOR, 1)
        assert len(plans) == 1
        assert plans[0].degree == 0

    def test_col_major_enumeration(self):
        plans = enumerate_plans((10, 10, 10), 2, 4, COL_MAJOR, 1)
        assert sorted(p.degree for p in plans) == [1, 2]

    def test_all_enumerated_plans_execute_correctly(self):
        rng = np.random.default_rng(20)
        shape, j, mode = (5, 6, 4, 3), 2, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        expect = ttm_oracle(x.data, u, mode)
        for plan in enumerate_plans(shape, mode, j, ROW_MAJOR, 2,
                                    kernels=("blas", "blocked")):
            y = ttm_inplace(x, u, plan=plan)
            assert np.allclose(y.data, expect), plan.describe()


class TestExhaustiveTuner:
    @pytest.fixture()
    def swept(self):
        rng = np.random.default_rng(21)
        shape, j, mode = (8, 8, 8, 8), 4, 0
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        tuner = ExhaustiveTuner(min_seconds=0.002, min_repeats=1)
        return tuner.sweep(x, u, mode)

    def test_sweep_times_every_candidate(self, swept):
        assert len(swept.seconds) == len(swept.plans) == 3
        assert all(s > 0 for s in swept.seconds)

    def test_best_plan_has_min_time(self, swept):
        assert swept.seconds[swept.best_index] == min(swept.seconds)
        assert swept.best_plan is swept.plans[swept.best_index]

    def test_best_gflops_consistent(self, swept):
        assert swept.best_gflops == pytest.approx(
            swept.flops / swept.seconds[swept.best_index] / 1e9
        )

    def test_gflops_of_specific_plan(self, swept):
        plan = swept.plans[0]
        assert swept.gflops_of(plan) == pytest.approx(
            swept.flops / swept.seconds[0] / 1e9
        )

    def test_table_sorted_descending(self, swept):
        rates = [rate for _desc, rate in swept.table()]
        assert rates == sorted(rates, reverse=True)
