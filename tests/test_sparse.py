"""Tests for the sparse tensor substrate (COO, semi-sparse, kernels)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    SemiSparseTensor,
    SparseTensor,
    mttkrp_sparse,
    random_sparse,
    ttm_sparse,
)
from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


class TestSparseTensor:
    def test_from_dense_roundtrip(self):
        rng = np.random.default_rng(0)
        dense = rng.standard_normal((4, 5, 6))
        dense[rng.random((4, 5, 6)) < 0.7] = 0.0
        sp = SparseTensor.from_dense(dense)
        assert sp.nnz == np.count_nonzero(dense)
        assert np.allclose(sp.to_dense().data, dense)

    def test_duplicates_are_summed(self):
        idx = np.array([[0, 0], [0, 0], [1, 1]])
        val = np.array([1.0, 2.0, 3.0])
        sp = SparseTensor(idx, val, (2, 2))
        assert sp.nnz == 2
        assert sp.to_dense().data[0, 0] == 3.0

    def test_explicit_zeros_dropped(self):
        sp = SparseTensor(np.array([[0, 0]]), np.array([0.0]), (2, 2))
        assert sp.nnz == 0

    def test_cancellation_drops_entry(self):
        idx = np.array([[1, 1], [1, 1]])
        sp = SparseTensor(idx, np.array([2.0, -2.0]), (2, 2))
        assert sp.nnz == 0

    def test_canonical_order_is_lexicographic(self):
        idx = np.array([[1, 0], [0, 1], [0, 0]])
        sp = SparseTensor(idx, np.ones(3), (2, 2))
        assert np.array_equal(sp.indices, [[0, 0], [0, 1], [1, 0]])

    def test_out_of_bounds_rejected(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.array([[2, 0]]), np.ones(1), (2, 2))

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((1, 2), dtype=int), np.ones(1), (2, 0))
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((1, 3), dtype=int), np.ones(1), (2, 2))
        with pytest.raises(ShapeError):
            SparseTensor(np.zeros((1, 2), dtype=int), np.ones(2), (2, 2))

    def test_density_and_norm(self):
        sp = SparseTensor(np.array([[0, 0], [1, 1]]),
                          np.array([3.0, 4.0]), (2, 2))
        assert sp.density == pytest.approx(0.5)
        assert sp.norm() == pytest.approx(5.0)

    def test_empty(self):
        sp = SparseTensor.empty((3, 4))
        assert sp.nnz == 0
        assert np.all(sp.to_dense().data == 0.0)

    def test_repr(self):
        assert "nnz=0" in repr(SparseTensor.empty((2, 2)))


class TestRandomSparse:
    def test_density_respected(self):
        sp = random_sparse((10, 10, 10), density=0.05, seed=1)
        assert sp.nnz == 50

    def test_deterministic(self):
        a = random_sparse((8, 8), 0.2, seed=2)
        b = random_sparse((8, 8), 0.2, seed=2)
        assert np.array_equal(a.indices, b.indices)
        assert np.array_equal(a.values, b.values)

    def test_no_duplicates(self):
        sp = random_sparse((5, 5), 0.8, seed=3)
        assert len(np.unique(sp.indices, axis=0)) == sp.nnz

    def test_zero_density(self):
        assert random_sparse((4, 4), 0.0, seed=4).nnz == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            random_sparse((4, 4), 1.5)


class TestTtmSparse:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_oracle(self, mode):
        rng = np.random.default_rng(5)
        x = random_sparse((5, 6, 7), 0.15, seed=6)
        u = rng.standard_normal((3, x.shape[mode]))
        semi = ttm_sparse(x, u, mode)
        expect = ttm_oracle(x.to_dense().data, u, mode)
        assert np.allclose(semi.to_dense().data, expect)

    def test_output_is_dense_along_mode(self):
        x = random_sparse((6, 7, 8), 0.1, seed=7)
        semi = ttm_sparse(x, np.ones((4, 7)), 1)
        assert semi.dense_mode == 1
        assert semi.shape == (6, 4, 8)
        assert semi.block.shape == (semi.n_fibers, 4)

    def test_fiber_count_matches_distinct_coordinates(self):
        x = random_sparse((5, 5, 5), 0.2, seed=8)
        semi = ttm_sparse(x, np.ones((2, 5)), 0)
        distinct = len(np.unique(x.indices[:, 1:], axis=0))
        assert semi.n_fibers == distinct

    def test_semisparse_saves_storage_vs_dense(self):
        x = random_sparse((20, 20, 20), 0.01, seed=9)
        semi = ttm_sparse(x, np.ones((4, 20)), 1)
        dense_words = 20 * 4 * 20
        assert semi.storage_words < dense_words

    def test_empty_input(self):
        x = SparseTensor.empty((4, 5))
        semi = ttm_sparse(x, np.ones((2, 5)), 1)
        assert semi.n_fibers == 0
        assert np.all(semi.to_dense().data == 0.0)

    def test_order4(self):
        rng = np.random.default_rng(10)
        x = random_sparse((4, 3, 5, 2), 0.2, seed=11)
        u = rng.standard_normal((2, 5))
        semi = ttm_sparse(x, u, 2)
        assert np.allclose(
            semi.to_dense().data, ttm_oracle(x.to_dense().data, u, 2)
        )

    def test_validation(self):
        x = random_sparse((4, 5), 0.2, seed=12)
        with pytest.raises(TypeError):
            ttm_sparse(np.zeros((4, 5)), np.ones((2, 5)), 1)
        with pytest.raises(ShapeError):
            ttm_sparse(x, np.ones((2, 6)), 1)

    @settings(max_examples=20, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
        density=st.floats(0.05, 0.5),
        j=st.integers(1, 4),
        data=st.data(),
    )
    def test_property_matches_oracle(self, shape, density, j, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        x = random_sparse(shape, density, seed=13)
        rng = np.random.default_rng(14)
        u = rng.standard_normal((j, shape[mode]))
        semi = ttm_sparse(x, u, mode)
        assert np.allclose(
            semi.to_dense().data, ttm_oracle(x.to_dense().data, u, mode)
        )


class TestSemiSparseTensor:
    def test_densification(self):
        semi = SemiSparseTensor(
            np.array([[0, 0], [1, 2]]), np.ones((2, 3)), (2, 3, 3), 1
        )
        assert semi.densification == pytest.approx(2 / 6)

    def test_validation(self):
        with pytest.raises(ShapeError):
            SemiSparseTensor(np.zeros((1, 2), dtype=int), np.ones((1, 3)),
                             (2, 3), 1)  # order mismatch
        with pytest.raises(ShapeError):
            SemiSparseTensor(np.zeros((1, 1), dtype=int), np.ones((1, 4)),
                             (2, 3), 1)  # block width != extent
        with pytest.raises(ShapeError):
            SemiSparseTensor(np.array([[5]]), np.ones((1, 3)), (2, 3), 1)

    def test_norm(self):
        semi = SemiSparseTensor(
            np.array([[0]]), np.array([[3.0, 4.0]]), (2, 2), 1
        )
        assert semi.norm() == pytest.approx(5.0)


class TestMttkrpSparse:
    def mttkrp_dense_oracle(self, x_dense, factors, mode):
        from tests.test_decomp_cp import mttkrp_oracle

        return mttkrp_oracle(x_dense, factors, mode)

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_dense_oracle(self, mode):
        rng = np.random.default_rng(15)
        shape, rank = (5, 6, 7), 3
        x = random_sparse(shape, 0.2, seed=16)
        factors = [rng.standard_normal((s, rank)) for s in shape]
        got = mttkrp_sparse(x, factors, mode)
        expect = self.mttkrp_dense_oracle(x.to_dense().data, factors, mode)
        assert np.allclose(got, expect)

    def test_empty_tensor_gives_zeros(self):
        x = SparseTensor.empty((3, 4))
        factors = [np.ones((3, 2)), np.ones((4, 2))]
        assert np.all(mttkrp_sparse(x, factors, 0) == 0.0)

    def test_validation(self):
        x = random_sparse((3, 4), 0.5, seed=17)
        with pytest.raises(ShapeError):
            mttkrp_sparse(x, [np.ones((3, 2))], 0)
        with pytest.raises(ShapeError):
            mttkrp_sparse(x, [np.ones((3, 2)), np.ones((5, 2))], 0)
        with pytest.raises(TypeError):
            mttkrp_sparse(np.zeros((3, 4)), [np.ones((3, 2))] * 2, 0)

    def test_cp_als_runs_on_sparsified_input(self):
        """The dense CP-ALS with a sparse MTTKRP backend closure."""
        from repro.decomp.cp import cp_als

        rng = np.random.default_rng(18)
        dense = np.zeros((6, 5, 4))
        dense[rng.random(dense.shape) < 0.3] = 1.0
        x_dense = DenseTensor(dense)
        x_sparse = SparseTensor.from_dense(dense)

        def backend(_x, factors, mode):
            return mttkrp_sparse(x_sparse, factors, mode)

        result = cp_als(x_dense, 3, max_iterations=10,
                        mttkrp_backend=backend)
        reference = cp_als(x_dense, 3, max_iterations=10)
        assert result.fit == pytest.approx(reference.fit, abs=1e-8)
