"""Tests for MTTKRP and CP-ALS."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp.cp import (
    CpResult,
    cp_als,
    cp_reconstruct,
    khatri_rao,
    mttkrp,
    mttkrp_inplace,
)
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError


def mttkrp_oracle(x: np.ndarray, factors, mode: int) -> np.ndarray:
    """Definitional MTTKRP: contract every non-mode index with its factor."""
    rank = factors[0].shape[1]
    out = np.zeros((x.shape[mode], rank))
    for r in range(rank):
        w = x
        # Contract trailing modes first so earlier indices stay put.
        for m in reversed(range(x.ndim)):
            if m == mode:
                continue
            w = np.tensordot(w, factors[m][:, r], axes=(m, 0))
        out[:, r] = w
    return out


def random_factors(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    return [rng.standard_normal((s, rank)) for s in shape]


class TestKhatriRao:
    def test_two_matrices_definition(self):
        a = np.array([[1.0, 2.0], [3.0, 4.0]])
        b = np.array([[5.0, 6.0], [7.0, 8.0], [9.0, 10.0]])
        kr = khatri_rao([a, b])
        assert kr.shape == (6, 2)
        # Row (i=1, j=2) = a[1] * b[2]; the last matrix varies fastest.
        assert np.allclose(kr[1 * 3 + 2], a[1] * b[2])

    def test_single_matrix_identity(self):
        a = np.random.default_rng(0).standard_normal((4, 3))
        assert np.array_equal(khatri_rao([a]), a)

    def test_associativity(self):
        rng = np.random.default_rng(1)
        mats = [rng.standard_normal((n, 2)) for n in (2, 3, 4)]
        left = khatri_rao([khatri_rao(mats[:2]), mats[2]])
        flat = khatri_rao(mats)
        assert np.allclose(left, flat)

    def test_rank_mismatch_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao([np.zeros((2, 2)), np.zeros((2, 3))])

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            khatri_rao([])


class TestMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_conventional_matches_oracle(self, mode, layout):
        rng = np.random.default_rng(2)
        shape, rank = (4, 5, 6), 3
        x = DenseTensor(rng.standard_normal(shape), layout)
        factors = random_factors(shape, rank, seed=3)
        got = mttkrp(x, factors, mode)
        assert np.allclose(got, mttkrp_oracle(x.data, factors, mode))

    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_inplace_matches_oracle_order4(self, mode, layout):
        rng = np.random.default_rng(4)
        shape, rank = (3, 4, 2, 5), 2
        x = DenseTensor(rng.standard_normal(shape), layout)
        factors = random_factors(shape, rank, seed=5)
        got = mttkrp_inplace(x, factors, mode)
        assert np.allclose(got, mttkrp_oracle(x.data, factors, mode))

    def test_inplace_matches_conventional(self):
        rng = np.random.default_rng(6)
        shape, rank = (6, 5, 4), 4
        x = DenseTensor(rng.standard_normal(shape))
        factors = random_factors(shape, rank, seed=7)
        for mode in range(3):
            assert np.allclose(
                mttkrp_inplace(x, factors, mode), mttkrp(x, factors, mode)
            )

    def test_order2_is_plain_gemm(self):
        rng = np.random.default_rng(8)
        x = DenseTensor(rng.standard_normal((5, 7)))
        factors = random_factors((5, 7), 3, seed=9)
        got = mttkrp_inplace(x, factors, 0)
        assert np.allclose(got, x.data @ factors[1])

    def test_order1(self):
        x = DenseTensor(np.arange(4, dtype=float))
        factors = [np.ones((4, 2))]
        got = mttkrp_inplace(x, factors, 0)
        assert np.allclose(got, np.arange(4)[:, None] * np.ones((1, 2)))

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 4), min_size=2, max_size=4),
        rank=st.integers(1, 3),
        data=st.data(),
    )
    def test_property_inplace_equals_oracle(self, shape, rank, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        rng = np.random.default_rng(10)
        x = DenseTensor(rng.standard_normal(shape), layout)
        factors = random_factors(shape, rank, seed=11)
        got = mttkrp_inplace(x, factors, mode)
        assert np.allclose(got, mttkrp_oracle(x.data, factors, mode))

    def test_validation(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(TypeError):
            mttkrp(np.zeros((3, 4)), [np.zeros((3, 2))] * 2, 0)
        with pytest.raises(ShapeError):
            mttkrp(x, [np.zeros((3, 2))], 0)  # wrong factor count
        with pytest.raises(ShapeError):
            mttkrp(x, [np.zeros((3, 2)), np.zeros((5, 2))], 0)


def planted_cp_tensor(shape, rank, seed=0):
    rng = np.random.default_rng(seed)
    factors = [rng.standard_normal((s, rank)) for s in shape]
    result = CpResult(weights=np.ones(rank), factors=factors, fit=1.0)
    return cp_reconstruct(result), factors


class TestCpAls:
    def test_recovers_planted_rank1(self):
        x, _ = planted_cp_tensor((8, 9, 7), 1, seed=12)
        result = cp_als(x, 1, max_iterations=50)
        assert result.fit > 0.999

    def test_recovers_planted_rank3(self):
        x, _ = planted_cp_tensor((10, 9, 8), 3, seed=13)
        result = cp_als(x, 3, max_iterations=200, tolerance=1e-12)
        assert result.fit > 0.99

    def test_fit_non_decreasing(self):
        x, _ = planted_cp_tensor((6, 7, 5), 2, seed=14)
        result = cp_als(x, 2, max_iterations=20, tolerance=0.0)
        fits = result.fit_history
        assert all(b >= a - 1e-9 for a, b in zip(fits, fits[1:]))

    def test_backends_agree(self):
        x, _ = planted_cp_tensor((6, 5, 4), 2, seed=15)
        a = cp_als(x, 2, max_iterations=5, tolerance=0.0,
                   mttkrp_backend=mttkrp_inplace)
        b = cp_als(x, 2, max_iterations=5, tolerance=0.0,
                   mttkrp_backend=mttkrp)
        assert a.fit == pytest.approx(b.fit, abs=1e-10)

    def test_factors_are_normalized(self):
        x, _ = planted_cp_tensor((6, 5, 4), 2, seed=16)
        result = cp_als(x, 2, max_iterations=5)
        for f in result.factors:
            assert np.allclose(np.linalg.norm(f, axis=0), 1.0)

    def test_reconstruction_error_matches_fit(self):
        x, _ = planted_cp_tensor((6, 5, 4), 2, seed=17)
        result = cp_als(x, 2, max_iterations=30, tolerance=1e-12)
        recon = cp_reconstruct(result)
        rel = np.linalg.norm(recon.data - x.data) / np.linalg.norm(x.data)
        assert rel == pytest.approx(1.0 - result.fit, abs=1e-6)

    def test_order4(self):
        x, _ = planted_cp_tensor((5, 4, 3, 4), 2, seed=18)
        result = cp_als(x, 2, max_iterations=100, tolerance=1e-12)
        assert result.fit > 0.98

    def test_validation(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(ShapeError):
            cp_als(x, 0)
        with pytest.raises(ShapeError):
            cp_als(x, 2, max_iterations=0)
        with pytest.raises(TypeError):
            cp_als(np.zeros((3, 4)), 2)

    def test_result_fields(self):
        x, _ = planted_cp_tensor((4, 4, 4), 2, seed=19)
        result = cp_als(x, 2, max_iterations=3, tolerance=0.0)
        assert result.rank == 2
        assert result.iterations == 3
        assert len(result.fit_history) == 3
