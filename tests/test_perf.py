"""Tests for the perf utilities (timers, flops, profiler, machine info)."""

import time

import pytest

from repro.perf import (
    MachineInfo,
    PhaseProfiler,
    Timer,
    best_of,
    gemm_flops,
    gflops_rate,
    machine_info,
    time_callable,
    ttm_flops,
)
from repro.perf.profiler import NullProfiler


class TestTimer:
    def test_accumulates_laps(self):
        t = Timer()
        with t:
            time.sleep(0.001)
        with t:
            time.sleep(0.001)
        assert len(t.laps) == 2
        assert t.elapsed == pytest.approx(sum(t.laps))
        assert t.elapsed >= 0.002

    def test_reset(self):
        t = Timer()
        with t:
            pass
        t.reset()
        assert t.elapsed == 0.0 and t.laps == []


class TestTimeCallable:
    def test_returns_positive_minimum(self):
        calls = []
        sec = time_callable(lambda: calls.append(1), min_repeats=3,
                            min_seconds=0.0)
        assert sec >= 0.0
        assert len(calls) >= 3

    def test_min_seconds_enforced(self):
        calls = []

        def fn():
            calls.append(1)
            time.sleep(0.002)

        time_callable(fn, min_repeats=1, min_seconds=0.01)
        # sleep() may overshoot, but several repeats are still required.
        assert len(calls) >= 3

    def test_validates_repeats(self):
        with pytest.raises(ValueError):
            time_callable(lambda: None, min_repeats=0)

    def test_best_of(self):
        assert best_of(lambda: None, repeats=2) >= 0.0
        with pytest.raises(ValueError):
            best_of(lambda: None, repeats=0)


class TestFlops:
    def test_gemm_flops(self):
        assert gemm_flops(2, 3, 4) == 48

    def test_ttm_flops(self):
        assert ttm_flops((3, 4, 5), 2) == 240

    def test_gflops_rate(self):
        assert gflops_rate(2_000_000_000, 1.0) == pytest.approx(2.0)

    def test_gflops_rate_zero_time(self):
        assert gflops_rate(10, 0.0) == float("inf")
        assert gflops_rate(0, 0.0) == 0.0


class TestPhaseProfiler:
    def test_phases_accumulate(self):
        prof = PhaseProfiler()
        with prof.phase("transform"):
            time.sleep(0.001)
        with prof.phase("multiply"):
            time.sleep(0.001)
        with prof.phase("transform"):
            time.sleep(0.001)
        p = prof.profile
        assert p.seconds["transform"] > p.seconds["multiply"]
        assert 0.0 < p.time_fraction("transform") < 1.0
        assert p.time_fraction("transform") + p.time_fraction("multiply") == (
            pytest.approx(1.0)
        )

    def test_bytes_charging(self):
        prof = PhaseProfiler()
        prof.charge_bytes("transform", 100)
        prof.charge_bytes("multiply", 300)
        prof.charge_bytes("transform", 100)
        assert prof.profile.space_fraction("transform") == pytest.approx(0.4)
        assert prof.profile.total_bytes == 500

    def test_negative_bytes_rejected(self):
        with pytest.raises(ValueError):
            PhaseProfiler().charge_bytes("x", -1)

    def test_empty_profile_fractions_are_zero(self):
        prof = PhaseProfiler()
        assert prof.profile.time_fraction("x") == 0.0
        assert prof.profile.space_fraction("x") == 0.0

    def test_merge(self):
        a, b = PhaseProfiler(), PhaseProfiler()
        a.charge_bytes("t", 10)
        b.charge_bytes("t", 20)
        with b.phase("t"):
            pass
        a.profile.merge(b.profile)
        assert a.profile.bytes["t"] == 30
        assert "t" in a.profile.seconds

    def test_null_profiler_discards(self):
        prof = NullProfiler()
        with prof.phase("x"):
            pass
        prof.charge_bytes("x", 10)
        assert prof.profile.total_seconds == 0.0
        assert prof.profile.total_bytes == 0


class TestMachineInfo:
    def test_introspection_populates_fields(self):
        info = machine_info()
        assert isinstance(info, MachineInfo)
        assert info.logical_cpus >= 1
        assert info.physical_cores >= 1
        assert info.llc_bytes > 0
        assert info.numpy_version

    def test_table_rows(self):
        rows = machine_info().table_rows()
        labels = [label for label, _ in rows]
        assert "CPU model" in labels
        assert "Last-level cache" in labels

    def test_as_dict(self):
        d = machine_info().as_dict()
        assert "cpu_model" in d
