"""Tests for the transpose-U convention (Tensor Toolbox 't' flag)."""

import numpy as np
import pytest

from repro.core import InTensLi
from repro.core.inttm import ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


class TestTransposeU:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_interpreter_matches_oracle(self, mode, layout):
        rng = np.random.default_rng(0)
        shape = (5, 6, 7)
        x = DenseTensor(rng.standard_normal(shape), layout)
        a = rng.standard_normal((shape[mode], 3))  # I_n x J
        y = ttm_inplace(x, a, mode, transpose_u=True)
        assert np.allclose(y.data, ttm_oracle(x.data, a.T, mode))

    def test_facade_matches_oracle(self):
        rng = np.random.default_rng(1)
        lib = InTensLi()
        x = DenseTensor(rng.standard_normal((8, 9, 10)))
        a = rng.standard_normal((9, 4))
        y = lib.ttm(x, a, 1, transpose_u=True)
        assert np.allclose(y.data, ttm_oracle(x.data, a.T, 1))

    def test_equivalent_to_explicit_transpose(self):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((6, 7, 8)))
        a = rng.standard_normal((7, 3))
        via_flag = ttm_inplace(x, a, 1, transpose_u=True)
        via_copy = ttm_inplace(x, np.ascontiguousarray(a.T), 1)
        assert np.allclose(via_flag.data, via_copy.data)

    def test_no_copy_of_u(self):
        """The flag serves a transpose view straight to the kernel; the
        original buffer's values flow through (checked via aliasing)."""
        rng = np.random.default_rng(3)
        x = DenseTensor(rng.standard_normal((5, 6, 7)))
        a = rng.standard_normal((6, 2))
        y1 = ttm_inplace(x, a, 1, transpose_u=True)
        a[0, 0] += 1.0
        y2 = ttm_inplace(x, a, 1, transpose_u=True)
        # Results differ => the view read the live buffer both times.
        assert not np.allclose(y1.data, y2.data)

    def test_shape_validation(self):
        x = DenseTensor.zeros((4, 5))
        with pytest.raises(ShapeError):
            ttm_inplace(x, np.zeros((3, 2)), 0, transpose_u=True)
        with pytest.raises(ShapeError):
            ttm_inplace(x, np.zeros(4), 0, transpose_u=True)

    def test_accumulate_adds_into_out(self):
        rng = np.random.default_rng(5)
        x = DenseTensor(rng.standard_normal((4, 5, 6)))
        u = rng.standard_normal((3, 5))
        from repro.tensor.dense import DenseTensor as DT

        out = DT(rng.standard_normal((4, 3, 6)))
        base = out.data.copy()
        ttm_inplace(x, u, 1, out=out, accumulate=True)
        assert np.allclose(out.data, base + ttm_oracle(x.data, u, 1))

    def test_accumulate_requires_out(self):
        from repro.util.errors import PlanError

        x = DenseTensor.zeros((4, 5))
        with pytest.raises(PlanError):
            ttm_inplace(x, np.zeros((2, 5)), 1, accumulate=True)

    def test_accumulate_twice_doubles(self):
        rng = np.random.default_rng(6)
        x = DenseTensor(rng.standard_normal((4, 5, 6)))
        u = rng.standard_normal((2, 6))
        out = DenseTensor.zeros((4, 5, 2))
        ttm_inplace(x, u, 2, out=out, accumulate=True)
        ttm_inplace(x, u, 2, out=out, accumulate=True)
        assert np.allclose(out.data, 2 * ttm_oracle(x.data, u, 2))

    def test_hooi_unchanged_by_view_optimization(self):
        """Tucker's projection chain now feeds transpose views to the
        backends; fits must match the old copied-transpose behaviour."""
        from repro.decomp import hooi
        from repro.tensor.generate import low_rank_tensor

        x = low_rank_tensor((8, 8, 8), 2, seed=4)
        result = hooi(x, 2, max_iterations=3, tolerance=0.0)
        assert result.fit == pytest.approx(1.0, abs=1e-6)
