"""Tests for the hierarchical Tucker decomposition."""


import numpy as np
import pytest

from repro.decomp.htucker import ht_error, ht_reconstruct, ht_svd
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import low_rank_tensor, random_tensor
from repro.util.errors import ShapeError


class TestHtSvd:
    @pytest.mark.parametrize("shape", [(4, 5), (4, 5, 6), (3, 4, 3, 4),
                                       (2, 3, 2, 3, 2)])
    def test_exact_at_full_rank(self, shape):
        x = random_tensor(shape, seed=0)
        ht = ht_svd(x, max_rank=64)
        assert ht_error(x, ht) < 1e-10

    def test_rank_caps_respected(self):
        x = random_tensor((5, 6, 7, 4), seed=1)
        ht = ht_svd(x, max_rank=3)
        for span, rank in ht.ranks().items():
            if len(span) == 4:
                continue  # root rank is 1 by construction
            assert rank <= 3

    def test_root_rank_is_one(self):
        x = random_tensor((4, 4, 4), seed=2)
        ht = ht_svd(x, max_rank=2)
        assert ht.root.rank == 1
        assert ht.root.transfer.ndim == 2

    def test_low_rank_tensor_recovers_losslessly(self):
        x = low_rank_tensor((8, 8, 8, 8), 2, seed=3)
        ht = ht_svd(x, max_rank=4)
        assert ht_error(x, ht) < 1e-7

    def test_error_decreases_with_rank(self):
        x = random_tensor((6, 6, 6, 6), seed=4)
        errors = [ht_error(x, ht_svd(x, max_rank=r)) for r in (1, 2, 4, 8)]
        assert all(b <= a + 1e-12 for a, b in zip(errors, errors[1:]))

    def test_tree_spans_are_contiguous_and_partition(self):
        x = random_tensor((3, 4, 5, 6, 7), seed=5)
        ht = ht_svd(x, max_rank=2)
        spans = list(ht.ranks())
        for span in spans:
            assert span == tuple(range(span[0], span[-1] + 1))
        leaves = sorted(s for s in spans if len(s) == 1)
        assert leaves == [(m,) for m in range(5)]

    def test_validation(self):
        with pytest.raises(TypeError):
            ht_svd(np.zeros((3, 3)), 2)
        with pytest.raises(ShapeError):
            ht_svd(DenseTensor.zeros((3, 3)), 0)
        with pytest.raises(ShapeError):
            ht_svd(DenseTensor.zeros((5,)), 2)


class TestStorage:
    def test_parameters_linear_in_order(self):
        """HT storage grows linearly with order at fixed rank, unlike the
        exponential Tucker core — the reason the paper names it for
        high-dimensional tensors."""
        rank = 2
        counts = []
        for order in (3, 4, 5, 6):
            x = low_rank_tensor((4,) * order, rank, seed=6)
            ht = ht_svd(x, max_rank=rank)
            counts.append(ht.n_parameters)
        # Increments are bounded (no exponential blow-up).
        increments = [b - a for a, b in zip(counts, counts[1:])]
        assert max(increments) <= 2 * min(increments) + 32

    def test_compression_beats_dense_for_low_rank(self):
        x = low_rank_tensor((8, 8, 8, 8), 2, seed=7)
        ht = ht_svd(x, max_rank=2)
        assert ht.compression > 10.0

    def test_n_parameters_counts_all_nodes(self):
        x = random_tensor((3, 4), seed=8)
        ht = ht_svd(x, max_rank=2)
        # Two leaf frames + root transfer.
        expected = (
            ht.root.left.leaf_frame.size
            + ht.root.right.leaf_frame.size
            + ht.root.transfer.size
        )
        assert ht.n_parameters == expected


class TestReconstruct:
    def test_returns_dense_tensor_with_shape(self):
        x = random_tensor((4, 5, 6), seed=9)
        back = ht_reconstruct(ht_svd(x, max_rank=32))
        assert isinstance(back, DenseTensor)
        assert back.shape == x.shape

    def test_error_of_zero_tensor(self):
        x = DenseTensor.zeros((3, 3, 3))
        ht = ht_svd(x, max_rank=1)
        assert ht_error(x, ht) == 0.0

    def test_truncated_error_close_to_tucker_optimum(self):
        """HT at rank k cannot beat the best mode-k Tucker approximation
        by definition, but should be within a modest factor of it."""
        x = random_tensor((6, 6, 6), seed=10)
        from repro.decomp import hosvd

        k = 3
        tucker = hosvd(x, (k, k, k))
        tucker_err = 1.0 - tucker.fit
        ht = ht_svd(x, max_rank=k)
        assert ht_error(x, ht) <= max(3.0 * tucker_err, 1e-10)
