"""Tests for the compressed-sparse-fiber (CSF) format and its MTTKRP."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import (
    CsfTensor,
    SparseTensor,
    csf_mttkrp,
    mttkrp_sparse,
    random_sparse,
)
from repro.util.errors import ShapeError


class TestConstruction:
    def test_roundtrip_to_coo(self):
        x = random_sparse((6, 5, 7), 0.2, seed=0)
        back = CsfTensor.from_coo(x).to_coo()
        assert np.array_equal(back.indices, x.indices)
        assert np.allclose(back.values, x.values)

    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5])
    def test_roundtrip_any_order(self, order):
        x = random_sparse((4,) * order, 0.3, seed=order)
        back = CsfTensor.from_coo(x).to_coo()
        assert np.array_equal(back.indices, x.indices)
        assert np.allclose(back.values, x.values)

    def test_default_mode_order_puts_shortest_first(self):
        x = random_sparse((9, 2, 5), 0.3, seed=1)
        csf = CsfTensor.from_coo(x)
        assert csf.mode_order[0] == 1  # extent 2 is shortest

    def test_explicit_mode_order(self):
        x = random_sparse((4, 5, 6), 0.3, seed=2)
        csf = CsfTensor.from_coo(x, mode_order=(2, 0, 1))
        assert csf.root_mode == 2
        back = csf.to_coo()
        assert np.array_equal(back.indices, x.indices)

    def test_bad_mode_order_rejected(self):
        x = random_sparse((4, 5), 0.3, seed=3)
        with pytest.raises(ShapeError):
            CsfTensor.from_coo(x, mode_order=(0, 0))

    def test_rejects_non_sparse(self):
        with pytest.raises(TypeError):
            CsfTensor.from_coo(np.zeros((3, 3)))

    def test_empty_tensor(self):
        x = SparseTensor.empty((3, 4, 5))
        csf = CsfTensor.from_coo(x)
        assert csf.nnz == 0
        assert csf.to_coo().nnz == 0

    def test_levels_are_consistent(self):
        x = random_sparse((5, 6, 7), 0.25, seed=4)
        csf = CsfTensor.from_coo(x)
        # One fids array per level, pointers chain level sizes.
        assert len(csf.fids) == 3 and len(csf.fptr) == 3
        for level in range(2):
            assert csf.fptr[level][-1] == csf.fids[level + 1].size
        assert csf.fptr[2][-1] == csf.nnz


class TestCompression:
    def test_compression_beats_coo_on_clustered_data(self):
        """Dense-ish sparse tensors share long prefixes: CSF compresses."""
        x = random_sparse((20, 20, 20), 0.5, seed=5)
        csf = CsfTensor.from_coo(x)
        assert csf.compression_vs_coo() > 1.0

    def test_storage_words_accounting(self):
        x = random_sparse((4, 4), 0.5, seed=6)
        csf = CsfTensor.from_coo(x)
        expected = (
            csf.values.size
            + sum(f.size for f in csf.fids)
            + sum(p.size for p in csf.fptr)
        )
        assert csf.storage_words == expected


class TestCsfMttkrp:
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_matches_coo_kernel_every_mode(self, mode):
        x = random_sparse((6, 5, 7, 4), 0.2, seed=7)
        csf = CsfTensor.from_coo(x)
        rng = np.random.default_rng(8)
        factors = [rng.standard_normal((s, 3)) for s in x.shape]
        assert np.allclose(
            csf_mttkrp(csf, factors, mode), mttkrp_sparse(x, factors, mode)
        )

    def test_root_mode_needs_no_recompression(self):
        x = random_sparse((5, 6, 7), 0.25, seed=9)
        csf = CsfTensor.from_coo(x, mode_order=(1, 0, 2))
        rng = np.random.default_rng(10)
        factors = [rng.standard_normal((s, 2)) for s in x.shape]
        got = csf_mttkrp(csf, factors, 1)
        assert np.allclose(got, mttkrp_sparse(x, factors, 1))

    def test_order1(self):
        x = random_sparse((8,), 0.5, seed=11)
        csf = CsfTensor.from_coo(x)
        out = csf_mttkrp(csf, [np.ones((8, 2))], 0)
        assert np.allclose(out, x.to_dense().data[:, None] * np.ones((1, 2)))

    def test_order2_is_spmm(self):
        x = random_sparse((6, 8), 0.4, seed=12)
        csf = CsfTensor.from_coo(x)
        rng = np.random.default_rng(13)
        b = rng.standard_normal((8, 3))
        factors = [np.ones((6, 3)), b]
        assert np.allclose(
            csf_mttkrp(csf, factors, 0), x.to_dense().data @ b
        )

    def test_empty(self):
        x = SparseTensor.empty((4, 5))
        csf = CsfTensor.from_coo(x)
        out = csf_mttkrp(csf, [np.ones((4, 2)), np.ones((5, 2))], 0)
        assert np.all(out == 0.0)

    def test_validation(self):
        x = random_sparse((4, 5), 0.5, seed=14)
        csf = CsfTensor.from_coo(x)
        with pytest.raises(TypeError):
            csf_mttkrp(x, [np.ones((4, 2)), np.ones((5, 2))], 0)
        with pytest.raises(ShapeError):
            csf_mttkrp(csf, [np.ones((4, 2))], 0)
        with pytest.raises(ShapeError):
            csf_mttkrp(csf, [np.ones((4, 2)), np.ones((9, 2))], 0)

    @settings(max_examples=20, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
        density=st.floats(0.1, 0.6),
        data=st.data(),
    )
    def test_property_matches_coo_kernel(self, shape, density, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        x = random_sparse(shape, density, seed=15)
        csf = CsfTensor.from_coo(x)
        rng = np.random.default_rng(16)
        factors = [rng.standard_normal((s, 2)) for s in shape]
        assert np.allclose(
            csf_mttkrp(csf, factors, mode), mttkrp_sparse(x, factors, mode)
        )
