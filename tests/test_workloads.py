"""Tests for the application-domain workload generators."""

import numpy as np
import pytest

from repro.decomp import hosvd
from repro.tensor.layout import COL_MAJOR
from repro.tensor.unfold import unfold
from repro.tensor.workloads import eeg_tensor, image_ensemble_tensor


class TestEegTensor:
    def test_shape_and_determinism(self):
        a = eeg_tensor(8, 6, 32, seed=0)
        b = eeg_tensor(8, 6, 32, seed=0)
        assert a.shape == (8, 6, 32)
        assert np.array_equal(a.data, b.data)

    def test_sources_concentrate_multilinear_energy(self):
        """With little noise, n_sources trilinear components capture
        almost all energy in every unfolding."""
        x = eeg_tensor(16, 12, 64, n_sources=3, noise=0.01, seed=1)
        for mode in range(3):
            s = np.linalg.svd(unfold(x, mode), compute_uv=False)
            energy = np.cumsum(s**2) / np.sum(s**2)
            assert energy[2] > 0.95

    def test_noise_raises_effective_rank(self):
        clean = eeg_tensor(12, 10, 48, n_sources=2, noise=0.0, seed=2)
        noisy = eeg_tensor(12, 10, 48, n_sources=2, noise=0.5, seed=2)
        s_clean = np.linalg.svd(unfold(clean, 0), compute_uv=False)
        s_noisy = np.linalg.svd(unfold(noisy, 0), compute_uv=False)
        tail_clean = np.sum(s_clean[2:] ** 2) / np.sum(s_clean**2)
        tail_noisy = np.sum(s_noisy[2:] ** 2) / np.sum(s_noisy**2)
        assert tail_noisy > tail_clean

    def test_layout_option(self):
        x = eeg_tensor(4, 4, 8, layout=COL_MAJOR, seed=3)
        assert x.layout is COL_MAJOR

    def test_validation(self):
        with pytest.raises(ValueError):
            eeg_tensor(0, 4, 8)


class TestImageEnsembleTensor:
    def test_shape(self):
        x = image_ensemble_tensor(6, 3, 2, 64, seed=4)
        assert x.shape == (6, 3, 2, 64)

    def test_low_multilinear_rank_structure(self):
        x = image_ensemble_tensor(10, 5, 4, 128, rank=3, noise=0.0, seed=5)
        result = hosvd(x, (3, 3, 3, 6))
        assert result.fit > 0.999

    def test_rank_clamped_to_extents(self):
        x = image_ensemble_tensor(3, 2, 2, 32, rank=10, seed=6)
        assert x.shape == (3, 2, 2, 32)

    def test_deterministic(self):
        a = image_ensemble_tensor(4, 3, 2, 32, seed=7)
        b = image_ensemble_tensor(4, 3, 2, 32, seed=7)
        assert np.array_equal(a.data, b.data)

    def test_validation(self):
        with pytest.raises(ValueError):
            image_ensemble_tensor(4, 3, 2, 32, rank=0)
