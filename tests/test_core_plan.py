"""Tests for TtmPlan validation and derived geometry."""

import pytest

from repro.core.plan import Strategy, TtmPlan
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR, Layout
from repro.util.errors import PlanError


def make_plan(**overrides):
    base = dict(
        shape=(4, 5, 6, 7),
        mode=1,
        j=3,
        layout=ROW_MAJOR,
        strategy=Strategy.FORWARD,
        component_modes=(2, 3),
        loop_modes=(0,),
    )
    base.update(overrides)
    return TtmPlan(**base)


class TestStrategy:
    def test_natural_for_layouts(self):
        assert Strategy.natural_for(Layout.ROW_MAJOR) is Strategy.FORWARD
        assert Strategy.natural_for(Layout.COL_MAJOR) is Strategy.BACKWARD


class TestValidation:
    def test_valid_plan_constructs(self):
        plan = make_plan()
        assert plan.degree == 2

    def test_mode_out_of_range(self):
        with pytest.raises(PlanError):
            make_plan(mode=4)

    def test_j_must_be_positive(self):
        with pytest.raises(PlanError):
            make_plan(j=0)

    def test_threads_must_be_positive(self):
        with pytest.raises(PlanError):
            make_plan(loop_threads=0)

    def test_overlapping_modes(self):
        with pytest.raises(PlanError):
            make_plan(component_modes=(2, 3), loop_modes=(0, 2))

    def test_mode_in_component_set(self):
        with pytest.raises(PlanError):
            make_plan(component_modes=(1, 2, 3), loop_modes=(0,))

    def test_incomplete_cover(self):
        with pytest.raises(PlanError):
            make_plan(component_modes=(3,), loop_modes=(0,))

    def test_non_consecutive_components(self):
        with pytest.raises(PlanError):
            make_plan(
                shape=(4, 5, 6, 7, 8), mode=1,
                component_modes=(2, 4), loop_modes=(0, 3),
            )

    def test_forward_requires_rightmost_run(self):
        # (2,) alone does not extend to the last mode — illegal forward M_C.
        with pytest.raises(PlanError):
            make_plan(component_modes=(2,), loop_modes=(0, 3))

    def test_forward_component_must_follow_mode(self):
        with pytest.raises(PlanError):
            make_plan(
                mode=3, component_modes=(2,), loop_modes=(0, 1),
            )

    def test_backward_requires_leftmost_run(self):
        plan = make_plan(
            mode=2,
            layout=COL_MAJOR,
            strategy=Strategy.BACKWARD,
            component_modes=(0, 1),
            loop_modes=(3,),
        )
        assert plan.degree == 2
        with pytest.raises(PlanError):
            make_plan(
                mode=2,
                layout=COL_MAJOR,
                strategy=Strategy.BACKWARD,
                component_modes=(1,),
                loop_modes=(0, 3),
            )

    def test_empty_component_set_allowed(self):
        plan = make_plan(component_modes=(), loop_modes=(0, 2, 3))
        assert plan.degree == 0
        assert plan.component_extent == 1


class TestDerivedGeometry:
    def test_out_shape_replaces_mode(self):
        assert make_plan().out_shape == (4, 3, 6, 7)

    def test_kernel_shape_forward(self):
        # Y_sub (J x P) = U (J x I_n) @ X_sub (I_n x P), P = 6*7.
        assert make_plan().kernel_shape == (3, 5, 42)

    def test_kernel_shape_backward(self):
        plan = make_plan(
            mode=2,
            layout=COL_MAJOR,
            strategy=Strategy.BACKWARD,
            component_modes=(0, 1),
            loop_modes=(3,),
        )
        # Y_sub (P x J) = X_sub (P x I_n) @ U^T, P = 4*5.
        assert plan.kernel_shape == (20, 6, 3)

    def test_loop_extents_and_iterations(self):
        plan = make_plan(component_modes=(3,), loop_modes=(0, 2))
        assert plan.loop_extents == (4, 6)
        assert plan.loop_iterations == 24

    def test_kernel_working_set(self):
        plan = make_plan()
        m, k, n = plan.kernel_shape
        assert plan.kernel_working_set_bytes == 8 * (m * k + k * n + m * n)

    def test_total_flops_matches_definition(self):
        plan = make_plan()
        assert plan.total_flops == 2 * plan.j * 4 * 5 * 6 * 7

    def test_describe_mentions_key_fields(self):
        text = make_plan().describe()
        assert "mode=1" in text and "M_C=(2,3)" in text and "forward" in text

    def test_cache_key(self):
        plan = make_plan()
        assert plan.cache_key() == ((4, 5, 6, 7), 1, 3, ROW_MAJOR, "float64")

    def test_plans_are_hashable(self):
        assert len({make_plan(), make_plan()}) == 1


class TestViewsBlasLegal:
    def test_natural_forward_row_major_is_legal(self):
        assert make_plan().views_blas_legal

    def test_natural_backward_col_major_is_legal(self):
        plan = make_plan(
            mode=2, layout=COL_MAJOR, strategy=Strategy.BACKWARD,
            component_modes=(0, 1), loop_modes=(3,),
        )
        assert plan.views_blas_legal

    def test_cross_strategy_on_leading_mode_is_legal(self):
        # Backward on the last row-major mode: mode carries unit stride.
        plan = make_plan(
            mode=3, strategy=Strategy.BACKWARD,
            component_modes=(0, 1), loop_modes=(2,),
        )
        assert plan.views_blas_legal

    def test_wrong_side_merge_is_general_stride(self):
        # Backward strategy on a middle mode of a row-major tensor: the
        # merged run excludes the leading mode -> both strides non-unit.
        plan = make_plan(
            mode=2, strategy=Strategy.BACKWARD,
            component_modes=(0, 1), loop_modes=(3,),
        )
        assert not plan.views_blas_legal

    def test_degree_zero_vacuously_legal(self):
        plan = make_plan(component_modes=(), loop_modes=(0, 2, 3))
        assert plan.views_blas_legal

    def test_estimator_never_emits_illegal_blas_plans(self):
        from repro.core.estimator import ParameterEstimator

        est = ParameterEstimator(max_threads=2)
        for layout in (ROW_MAJOR, COL_MAJOR):
            for mode in range(4):
                plan = est.estimate((10, 11, 12, 13), mode, 4, layout)
                if plan.kernel == "blas":
                    assert plan.views_blas_legal
