"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import _BENCHES, _parse_shape, build_parser, main


class TestParseShape:
    def test_basic(self):
        assert _parse_shape("100x80x60") == (100, 80, 60)

    def test_case_insensitive(self):
        assert _parse_shape("4X5") == (4, 5)

    def test_garbage_exits(self):
        with pytest.raises(SystemExit):
            _parse_shape("4xfoo")

    def test_zero_extent_exits(self):
        with pytest.raises(SystemExit):
            _parse_shape("4x0")


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        for argv in (
            ["info"],
            ["plan", "4x4", "0", "2"],
            ["profile", "out.json"],
            ["predict", "4x4", "0", "2"],
            ["bench", "list"],
        ):
            args = parser.parse_args(argv)
            assert callable(args.fn)


class TestCommands:
    def test_info(self, capsys):
        assert main(["info"]) == 0
        out = capsys.readouterr().out
        assert "CPU model" in out

    def test_plan_prints_source(self, capsys):
        assert main(["plan", "32x32x32", "1", "4"]) == 0
        out = capsys.readouterr().out
        assert "TtmPlan[32x32x32" in out
        assert "def inttm" in out

    def test_plan_col_major(self, capsys):
        assert main(["plan", "16x16x16", "1", "4", "--layout", "F"]) == 0
        assert "COL_MAJOR" in capsys.readouterr().out

    def test_predict_marks_estimator_choice(self, capsys):
        assert main(["predict", "8x8x8x8", "0", "4"]) == 0
        out = capsys.readouterr().out
        assert "<- estimator" in out
        assert "GFLOP/s (predicted)" in out

    def test_profile_saves_json(self, tmp_path, capsys, monkeypatch):
        # Shrink the measurement grid for test speed.

        def tiny_grid(m_values=(16,), **_kw):
            return [(m_values[0], 16, 16), (m_values[0], 32, 32)]

        monkeypatch.setattr("repro.gemm.bench.default_shape_grid", tiny_grid)
        out_file = tmp_path / "profile.json"
        assert main(["profile", str(out_file), "--j", "4"]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["meta"]["source"] == "measured"
        assert len(payload["points"]) == 2

    def test_bench_list(self, capsys):
        assert main(["bench", "list"]) == 0
        out = capsys.readouterr().out
        for name in ("fig04", "fig10", "table1", "intensity"):
            assert name in out

    def test_bench_unknown_name(self, capsys):
        assert main(["bench", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_bench_registry_covers_every_bench_file(self):
        import os

        bench_dir = os.path.join(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
            "benchmarks",
        )
        files = {
            f[: -len(".py")]
            for f in os.listdir(bench_dir)
            if f.startswith("bench_") and f.endswith(".py")
        }
        assert set(_BENCHES.values()) == files
