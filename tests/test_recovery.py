"""Crash-safe execution: the journaled checkpoint/restart layer.

Three tiers of proof, in increasing severity:

* unit tests of the journal format itself (torn tails, header
  mismatches, last-record-wins) and of the complete-or-untouched
  landing protocol;
* in-process crash/resume tests driven by the ``crash`` fault point's
  exception form, including a Hypothesis property over the shared
  geometry grid x layouts x dtypes: a run interrupted at any tile and
  resumed is *bit-identical* to an uninterrupted run;
* subprocess ``kill -9`` tests — the fault point's SIGKILL form — at
  every armed crash site (``tile-commit``, ``journal-append``,
  ``chunk-commit``, ``sweep-end``), proving the guarantees against real
  process death, not a simulation of it.
"""

from __future__ import annotations

import os
import subprocess
import sys
import tempfile
import textwrap

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune.store import PlanStore
from repro.core.tiling import (
    TilingPlan,
    execute_tiled,
    ttm_stream,
    ttm_tiled,
)
from repro.decomp.tucker import hooi
from repro.perf.profiler import HotCounters, install_hot_counters
from repro.resilience.faults import InjectedFault, fault_injection
from repro.resilience.recovery import (
    Journal,
    atomic_save_array,
    committed_units,
    describe_journal,
    digest_payload,
    file_checksum,
    fingerprint_array,
    is_done,
    open_or_resume,
    partial_path,
    region_checksum,
    resume_job,
    verify_journal,
)
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.layout import Layout
from repro.testing import DEFAULT_CASES
from repro.util.errors import RecoveryError

from .helpers import ttm_oracle

REPO_SRC = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"
)


def _subprocess_env():
    env = dict(os.environ)
    env["PYTHONPATH"] = REPO_SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


def _run_killed(script: str, cwd: str) -> None:
    """Run *script* in a subprocess and assert SIGKILL terminated it."""
    proc = subprocess.run(
        [sys.executable, "-c", textwrap.dedent(script)],
        cwd=cwd, env=_subprocess_env(), capture_output=True, text=True,
    )
    assert proc.returncode == -9, (
        f"expected SIGKILL (-9), got {proc.returncode}; "
        f"stderr:\n{proc.stderr}"
    )


def _forced_tiling(shape, mode, j, layout=Layout.ROW_MAJOR,
                   dtype="float64", parts=None) -> TilingPlan:
    """A deterministic multi-tile plan (no budget probe involved)."""
    if parts is None:
        parts = [1] * len(shape)
        for axis, extent in enumerate(shape):
            if axis != mode and extent >= 2:
                parts[axis] = min(extent, 3)
                break
    return TilingPlan(
        shape=tuple(shape), mode=mode, j=j, layout=Layout.parse(layout),
        dtype=dtype, parts=tuple(parts), budget=None,
        base_footprint_bytes=0, tile_footprint_bytes=0, packed=False,
        reason="test-forced",
    )


def _case(shape, j, mode, layout=Layout.ROW_MAJOR, dtype="float64",
          seed=0):
    rng = np.random.default_rng(seed)
    x = DenseTensor(
        rng.standard_normal(tuple(shape)).astype(dtype), layout
    )
    u = rng.standard_normal((j, shape[mode])).astype(dtype)
    return x, u


# -- the journal format --------------------------------------------------------


class TestJournal:
    def test_roundtrip(self, tmp_path):
        path = str(tmp_path / "j.json")
        journal = Journal.fresh(path, {"kind": "t", "digest": "d",
                                       "inputs": {}})
        journal.append({"type": "tile", "index": 0, "crc": 1})
        journal.append({"type": "tile", "index": 1, "crc": 2})
        journal.close({"type": "done", "tiles": 2})
        header, records = Journal.read(path)
        assert header["kind"] == "t"
        assert header["schema"] == 1
        assert [r["type"] for r in records] == ["tile", "tile", "done"]
        assert is_done(records)
        assert set(committed_units(records, "tile")) == {0, 1}

    def test_torn_trailing_line_dropped(self, tmp_path):
        path = str(tmp_path / "j.json")
        journal = Journal.fresh(path, {"kind": "t", "digest": "d",
                                       "inputs": {}})
        journal.append({"type": "tile", "index": 0, "crc": 1})
        journal.close()
        with open(path, "a") as fh:
            fh.write('{"type": "tile", "index": 1, "crc"')  # torn mid-write
        header, records = Journal.read(path)
        assert len(records) == 1
        assert records[0]["index"] == 0

    def test_no_header_raises(self, tmp_path):
        path = str(tmp_path / "j.json")
        with open(path, "w") as fh:
            fh.write("not json at all\n")
        with pytest.raises(RecoveryError):
            Journal.read(path)

    def test_open_or_resume_fresh_resume_mismatch(self, tmp_path):
        path = str(tmp_path / "j.json")
        header = {"kind": "t", "digest": "d", "inputs": {"u": 1}}
        journal, records = open_or_resume(path, header)
        assert records == []
        journal.append({"type": "tile", "index": 0, "crc": 9})
        journal.close()
        journal, records = open_or_resume(path, header)
        assert len(records) == 1
        journal.close()
        with pytest.raises(RecoveryError):
            open_or_resume(path, {"kind": "t", "digest": "OTHER",
                                  "inputs": {"u": 1}})
        with pytest.raises(RecoveryError):
            open_or_resume(path, {"kind": "t", "digest": "d",
                                  "inputs": {"u": 2}})

    def test_garbage_journal_recreated(self, tmp_path):
        path = str(tmp_path / "j.json")
        with open(path, "w") as fh:
            fh.write("garbage\n")
        journal, records = open_or_resume(
            path, {"kind": "t", "digest": "d", "inputs": {}}
        )
        assert records == []
        journal.close()
        header, _ = Journal.read(path)
        assert header["kind"] == "t"

    def test_last_record_wins(self):
        records = [
            {"type": "tile", "index": 0, "crc": 1},
            {"type": "tile", "index": 0, "crc": 2},
        ]
        assert committed_units(records, "tile")[0]["crc"] == 2

    def test_digest_stable_across_roundtrip(self):
        tiling = _forced_tiling((6, 5, 4), 1, 3)
        assert digest_payload(tiling.to_dict()) == digest_payload(
            TilingPlan.from_dict(tiling.to_dict()).to_dict()
        )

    def test_fingerprint_detects_edits(self):
        rng = np.random.default_rng(0)
        a = rng.standard_normal(100)
        fp = fingerprint_array(a)
        b = a.copy()
        b[0] += 1.0
        assert fingerprint_array(b) != fp
        assert fingerprint_array(a.copy()) == fp


# -- complete-or-untouched landing ---------------------------------------------


class TestAtomicLanding:
    def test_out_path_lands_without_partial(self, tmp_path):
        x, u = _case((6, 5, 4), 3, 1)
        out_path = str(tmp_path / "y.bin")
        y = ttm_tiled(x, u, 1, out_path=out_path)
        assert os.path.exists(out_path)
        assert not os.path.exists(partial_path(out_path))
        np.testing.assert_allclose(
            np.asarray(y.data), ttm_oracle(np.asarray(x.data), u, 1)
        )

    def test_failed_run_leaves_no_final_file(self, tmp_path):
        x, u = _case((6, 5, 4), 3, 1)
        out_path = str(tmp_path / "y.bin")
        tiling = _forced_tiling((6, 5, 4), 1, 3)

        calls = {"n": 0}

        def dying_executor(tile_plan, x_tile, u_arr, y_tile):
            calls["n"] += 1
            if calls["n"] == 2:
                raise RuntimeError("mid-run failure")
            from repro.core.inttm import ttm_inplace

            return ttm_inplace(x_tile, u_arr, plan=tile_plan, out=y_tile)

        with pytest.raises(RuntimeError):
            execute_tiled(x, u, tiling, out_path=out_path,
                          executor=dying_executor)
        # Complete-or-untouched: the requested path never holds a torn
        # result; the staging partial is what remains.
        assert not os.path.exists(out_path)
        assert os.path.exists(partial_path(out_path))

    def test_atomic_save_array_roundtrip(self, tmp_path):
        path = str(tmp_path / "a.npy")
        arr = np.arange(12, dtype=np.float64).reshape(3, 4)
        crc = atomic_save_array(path, arr)
        assert file_checksum(path) == crc
        assert not os.path.exists(partial_path(path))
        np.testing.assert_array_equal(np.load(path), arr)


# -- satellite: plan-store durability ------------------------------------------


class TestStoreFsync:
    def test_save_counts_fsync(self, tmp_path):
        store = PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")
        counters = HotCounters()
        previous = install_hot_counters(counters)
        try:
            store._write_payload({}, None)
        finally:
            install_hot_counters(previous)
        assert counters.store_fsyncs == 1
        assert counters.as_dict()["store_fsyncs"] == 1


# -- in-process crash and resume -----------------------------------------------


class TestInProcessResume:
    def test_resume_skips_committed_tiles(self, tmp_path):
        shape, j, mode = (8, 6, 5), 4, 1
        x, u = _case(shape, j, mode)
        tiling = _forced_tiling(shape, mode, j)
        assert tiling.n_tiles >= 3
        ref_path = str(tmp_path / "ref.bin")
        execute_tiled(x, u, tiling, out_path=ref_path,
                      journal_path=str(tmp_path / "ref.json"))

        out_path = str(tmp_path / "y.bin")
        journal_path = str(tmp_path / "j.json")
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="tile-commit",
                       tile=1)
            with pytest.raises(InjectedFault):
                execute_tiled(x, u, tiling, out_path=out_path,
                              journal_path=journal_path)
        assert not os.path.exists(out_path)
        committed = committed_units(Journal.read(journal_path)[1], "tile")
        assert set(committed) == {0}

        counters = HotCounters()
        previous = install_hot_counters(counters)
        try:
            execute_tiled(x, u, tiling, out_path=out_path,
                          journal_path=journal_path)
        finally:
            install_hot_counters(previous)
        assert counters.tiles_resumed == 1
        assert counters.tiles_reverified == 1
        assert counters.journal_commits > 0
        with open(out_path, "rb") as a, open(ref_path, "rb") as b:
            assert a.read() == b.read()

    def test_resume_recomputes_corrupted_tile(self, tmp_path):
        shape, j, mode = (8, 6, 5), 4, 1
        x, u = _case(shape, j, mode)
        tiling = _forced_tiling(shape, mode, j)
        out_path = str(tmp_path / "y.bin")
        journal_path = str(tmp_path / "j.json")
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="tile-commit",
                       tile=2)
            with pytest.raises(InjectedFault):
                execute_tiled(x, u, tiling, out_path=out_path,
                              journal_path=journal_path)
        # Corrupt a committed tile's landed bytes in the partial (tile 0
        # owns the leading rows, right after the npy header): the resume
        # must re-checksum, notice, and recompute it.
        part = partial_path(out_path)
        with open(part, "r+b") as fh:
            fh.seek(200)
            byte = fh.read(1)
            fh.seek(200)
            fh.write(bytes([byte[0] ^ 0xFF]))
        counters = HotCounters()
        previous = install_hot_counters(counters)
        try:
            y = execute_tiled(x, u, tiling, out_path=out_path,
                              journal_path=journal_path)
        finally:
            install_hot_counters(previous)
        assert counters.tiles_reverified > counters.tiles_resumed
        np.testing.assert_allclose(
            np.asarray(y.data), ttm_oracle(np.asarray(x.data), u, mode)
        )

    def test_completed_journal_short_circuits(self, tmp_path):
        x, u = _case((6, 5, 4), 3, 1)
        tiling = _forced_tiling((6, 5, 4), 1, 3)
        out_path = str(tmp_path / "y.bin")
        journal_path = str(tmp_path / "j.json")
        y1 = execute_tiled(x, u, tiling, out_path=out_path,
                           journal_path=journal_path)
        stamp = os.stat(out_path).st_mtime_ns
        counters = HotCounters()
        previous = install_hot_counters(counters)
        try:
            y2 = execute_tiled(x, u, tiling, out_path=out_path,
                               journal_path=journal_path)
        finally:
            install_hot_counters(previous)
        assert counters.tiles_executed == 0
        assert os.stat(out_path).st_mtime_ns == stamp
        np.testing.assert_array_equal(
            np.asarray(y1.data), np.asarray(y2.data)
        )

    def test_journal_for_different_inputs_refuses(self, tmp_path):
        x, u = _case((6, 5, 4), 3, 1, seed=0)
        tiling = _forced_tiling((6, 5, 4), 1, 3)
        journal_path = str(tmp_path / "j.json")
        execute_tiled(x, u, tiling, out_path=str(tmp_path / "y.bin"),
                      journal_path=journal_path)
        x2, u2 = _case((6, 5, 4), 3, 1, seed=99)
        with pytest.raises(RecoveryError):
            execute_tiled(x2, u2, tiling,
                          out_path=str(tmp_path / "y2.bin"),
                          journal_path=journal_path)

    def test_ttm_tiled_adopts_journal_decision(self, tmp_path):
        rng = np.random.default_rng(3)
        shape = (12, 6, 5)
        x = DenseTensor(rng.standard_normal(shape))
        u = rng.standard_normal((4, 6))
        journal_path = str(tmp_path / "j.json")
        out_path = str(tmp_path / "y.bin")
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="tile-commit",
                       tile=0)
            with pytest.raises(InjectedFault):
                ttm_tiled(x, u, 1, budget=500, out_path=out_path,
                          journal_path=journal_path)
        recorded = Journal.read(journal_path)[0]["decision"]
        # Resume under a *different* requested budget: the journal's
        # decision must win, or the committed tiles would be orphaned.
        y = ttm_tiled(x, u, 1, budget=5_000_000, out_path=out_path,
                      journal_path=journal_path)
        assert Journal.read(journal_path)[0]["decision"] == recorded
        np.testing.assert_allclose(
            np.asarray(y.data), ttm_oracle(np.asarray(x.data), u, 1)
        )


# -- property: resume == uninterrupted, across the geometry grid ---------------


_RESUMABLE_CASES = [
    (shape, j, mode) for shape, j, mode in DEFAULT_CASES
    if any(a != mode and e >= 2 for a, e in enumerate(shape))
]


class TestResumeProperty:
    @settings(max_examples=25, deadline=None)
    @given(
        case=st.sampled_from(_RESUMABLE_CASES),
        layout=st.sampled_from([Layout.ROW_MAJOR, Layout.COL_MAJOR]),
        dtype=st.sampled_from(["float64", "float32"]),
        crash_fraction=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_resume_after_crash_matches_uninterrupted(
        self, case, layout, dtype, crash_fraction, seed
    ):
        shape, j, mode = case
        x, u = _case(shape, j, mode, layout=layout, dtype=dtype, seed=seed)
        tiling = _forced_tiling(shape, mode, j, layout=layout, dtype=dtype)
        crash_tile = min(
            tiling.n_tiles - 1, int(crash_fraction * tiling.n_tiles)
        )
        with tempfile.TemporaryDirectory() as tmp:
            ref_path = os.path.join(tmp, "ref.bin")
            execute_tiled(x, u, tiling, out_path=ref_path,
                          journal_path=os.path.join(tmp, "ref.json"))
            out_path = os.path.join(tmp, "y.bin")
            journal_path = os.path.join(tmp, "j.json")
            with fault_injection() as faults:
                faults.arm("crash", exc=InjectedFault, site="tile-commit",
                           tile=crash_tile)
                with pytest.raises(InjectedFault):
                    execute_tiled(x, u, tiling, out_path=out_path,
                                  journal_path=journal_path)
            y = execute_tiled(x, u, tiling, out_path=out_path,
                              journal_path=journal_path)
            # Bit-identical to the uninterrupted run...
            with open(out_path, "rb") as a, open(ref_path, "rb") as b:
                assert a.read() == b.read()
            # ...and numerically the oracle's answer.
            np.testing.assert_allclose(
                np.asarray(y.data, dtype=np.float64),
                ttm_oracle(
                    np.asarray(x.data, dtype=np.float64),
                    u.astype(np.float64), mode,
                ),
                rtol=1e-4 if dtype == "float32" else 1e-10,
                atol=1e-4 if dtype == "float32" else 1e-12,
            )


# -- subprocess kill -9 at every crash site ------------------------------------


_KILL_PREAMBLE = """
    import numpy as np
    from repro.tensor.dense import open_memmap_tensor
    from repro.resilience.faults import fault_injection
    rng = np.random.default_rng(7)
"""


class TestSubprocessKill:
    def _setup_ttm(self, tmp_path):
        rng = np.random.default_rng(7)
        x = open_memmap_tensor(str(tmp_path / "x.bin"), "w+",
                               shape=(12, 6, 5), dtype="float64")
        x.data[:] = rng.standard_normal((12, 6, 5))
        x.flush()
        np.save(str(tmp_path / "u.npy"), rng.standard_normal((4, 6)))
        return x

    def _ttm_script(self, arm: str) -> str:
        return _KILL_PREAMBLE + f"""
    from repro.core.tiling import ttm_tiled
    x = open_memmap_tensor("x.bin", "r")
    u = np.load("u.npy")
    with fault_injection() as faults:
        faults.arm({arm})
        ttm_tiled(x, u, 1, budget=500, out_path="y.bin",
                  journal_path="job.json")
    """

    @pytest.mark.parametrize("arm", [
        '"crash", site="tile-commit", tile=3',
        '"crash", site="journal-append", after=2',
    ])
    def test_kill_then_resume_ttm_bit_identical(self, tmp_path, arm):
        x = self._setup_ttm(tmp_path)
        u = np.load(str(tmp_path / "u.npy"))
        ref = ttm_tiled(x, u, 1, budget=500,
                        out_path=str(tmp_path / "ref.bin"),
                        journal_path=str(tmp_path / "ref.json"))
        _run_killed(self._ttm_script(arm), str(tmp_path))
        assert not os.path.exists(str(tmp_path / "y.bin"))
        committed = committed_units(
            Journal.read(str(tmp_path / "job.json"))[1], "tile"
        )
        assert committed, "the kill should land after some commits"
        y = ttm_tiled(x, u, 1, budget=500,
                      out_path=str(tmp_path / "y.bin"),
                      journal_path=str(tmp_path / "job.json"))
        with open(str(tmp_path / "y.bin"), "rb") as a, \
                open(str(tmp_path / "ref.bin"), "rb") as b:
            assert a.read() == b.read()
        np.testing.assert_array_equal(
            np.asarray(y.data), np.asarray(ref.data)
        )

    def test_kill_then_cli_resume_and_verify(self, tmp_path):
        self._setup_ttm(tmp_path)
        _run_killed(
            self._ttm_script('"crash", site="tile-commit", tile=5'),
            str(tmp_path),
        )
        from repro.cli import main

        cwd = os.getcwd()
        os.chdir(str(tmp_path))
        try:
            assert main(["recover", "resume", "job.json"]) == 0
            assert main(["recover", "verify", "job.json"]) == 0
            assert main(["recover", "show", "job.json"]) == 0
        finally:
            os.chdir(cwd)
        report = verify_journal(str(tmp_path / "job.json"),
                                out_path=str(tmp_path / "y.bin"))
        assert report.ok and report.done

    def test_kill_at_sweep_end_then_resume_hooi(self, tmp_path):
        rng = np.random.default_rng(11)
        x = open_memmap_tensor(str(tmp_path / "x.bin"), "w+",
                               shape=(10, 9, 8), dtype="float64")
        x.data[:] = rng.standard_normal((10, 9, 8))
        x.flush()
        ref = hooi(x, (3, 3, 3), max_iterations=4, tolerance=0.0,
                   checkpoint_path=str(tmp_path / "ref.json"))
        script = _KILL_PREAMBLE + """
    from repro.decomp.tucker import hooi
    x = open_memmap_tensor("x.bin", "r")
    with fault_injection() as faults:
        faults.arm("crash", site="sweep-end", sweep=2)
        hooi(x, (3, 3, 3), max_iterations=4, tolerance=0.0,
             checkpoint_path="job.json")
    """
        _run_killed(script, str(tmp_path))
        committed = committed_units(
            Journal.read(str(tmp_path / "job.json"))[1], "sweep",
            key="sweep",
        )
        assert set(committed) == {0, 1}
        result = hooi(x, (3, 3, 3), max_iterations=4, tolerance=0.0,
                      checkpoint_path=str(tmp_path / "job.json"))
        assert result.fit == ref.fit
        assert result.fit_history == ref.fit_history
        assert result.iterations == ref.iterations
        for a, b in zip(result.factors, ref.factors):
            np.testing.assert_array_equal(a, b)
        np.testing.assert_array_equal(
            np.asarray(result.core.data), np.asarray(ref.core.data)
        )

    def test_kill_at_chunk_commit_then_resume_stream(self, tmp_path):
        rng = np.random.default_rng(13)
        x_arr = rng.standard_normal((16, 6, 5))
        np.save(str(tmp_path / "x.npy"), x_arr)
        np.save(str(tmp_path / "u.npy"), rng.standard_normal((4, 16)))
        script = _KILL_PREAMBLE + """
    from repro.core.tiling import ttm_stream
    x = np.load("x.npy")
    u = np.load("u.npy")
    chunks = [x[i * 4:(i + 1) * 4] for i in range(4)]
    with fault_injection() as faults:
        faults.arm("crash", site="chunk-commit", chunk=2)
        for _ in ttm_stream(chunks, u, mode=0, axis=0,
                            journal_path="job.json"):
            pass
    """
        _run_killed(script, str(tmp_path))
        u = np.load(str(tmp_path / "u.npy"))
        chunks = [x_arr[i * 4:(i + 1) * 4] for i in range(4)]
        ref = list(ttm_stream(chunks, u, mode=0, axis=0))[-1]
        got = list(
            ttm_stream(chunks, u, mode=0, axis=0,
                       journal_path=str(tmp_path / "job.json"))
        )[-1]
        np.testing.assert_array_equal(
            np.asarray(got.data.data), np.asarray(ref.data.data)
        )


# -- verification and the operator surface -------------------------------------


class TestVerify:
    def _landed_job(self, tmp_path):
        x, u = _case((8, 6, 5), 4, 1)
        tiling = _forced_tiling((8, 6, 5), 1, 4)
        out_path = str(tmp_path / "y.bin")
        journal_path = str(tmp_path / "j.json")
        execute_tiled(x, u, tiling, out_path=out_path,
                      journal_path=journal_path)
        return out_path, journal_path

    def test_verify_clean_result(self, tmp_path):
        out_path, journal_path = self._landed_job(tmp_path)
        report = verify_journal(journal_path)
        assert report.ok and report.done
        assert report.verified == report.total

    def test_verify_flags_single_flipped_byte(self, tmp_path):
        out_path, journal_path = self._landed_job(tmp_path)
        with open(out_path, "r+b") as fh:
            fh.seek(-40, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-40, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0x01]))
        report = verify_journal(journal_path)
        assert not report.ok
        assert report.mismatched
        from repro.cli import main

        assert main(["recover", "verify", journal_path]) == 1

    def test_verify_missing_output(self, tmp_path):
        out_path, journal_path = self._landed_job(tmp_path)
        os.remove(out_path)
        report = verify_journal(journal_path)
        assert not report.ok and report.missing

    def test_describe_journal_rows(self, tmp_path):
        _, journal_path = self._landed_job(tmp_path)
        rows = dict(describe_journal(journal_path))
        assert rows["kind"] == "ttm-tiled"
        assert rows["status"] == "complete"

    def test_resume_job_requires_recorded_paths(self, tmp_path):
        # In-RAM operands: no x_path/u_path in the header, so the CLI
        # cannot reconstruct the job and must say so.
        _, journal_path = self._landed_job(tmp_path)
        with pytest.raises(RecoveryError):
            resume_job(journal_path)


# -- streaming cursors ---------------------------------------------------------


class TestStreamCursor:
    def test_committed_chunks_skipped(self, tmp_path):
        rng = np.random.default_rng(5)
        x_arr = rng.standard_normal((12, 6, 5))
        u = rng.standard_normal((4, 6))
        chunks = [x_arr[i * 3:(i + 1) * 3] for i in range(4)]
        journal_path = str(tmp_path / "j.json")
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="chunk-commit",
                       chunk=2)
            seen = []
            with pytest.raises(InjectedFault):
                for chunk in ttm_stream(chunks, u, mode=1, axis=0,
                                        journal_path=journal_path):
                    seen.append((chunk.lo, chunk.hi))
        assert seen == [(0, 3), (3, 6), (6, 9)]  # chunk 2 computed, lost
        resumed = list(
            ttm_stream(chunks, u, mode=1, axis=0,
                       journal_path=journal_path)
        )
        # Chunks 0-1 committed (their successor was pulled); the crash
        # lost chunk 2's commit, so the resume replays from row 6.
        assert [(c.lo, c.hi) for c in resumed] == [(6, 9), (9, 12)]
        oracle = ttm_oracle(x_arr, u, 1)
        for chunk in resumed:
            np.testing.assert_allclose(
                np.asarray(chunk.data.data), oracle[chunk.lo:chunk.hi]
            )
        assert is_done(Journal.read(journal_path)[1])

    def test_diverging_stream_refused(self, tmp_path):
        rng = np.random.default_rng(6)
        x_arr = rng.standard_normal((12, 6, 5))
        u = rng.standard_normal((4, 6))
        chunks = [x_arr[i * 3:(i + 1) * 3] for i in range(4)]
        journal_path = str(tmp_path / "j.json")
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="chunk-commit",
                       chunk=3)
            with pytest.raises(InjectedFault):
                for _ in ttm_stream(chunks, u, mode=1, axis=0,
                                    journal_path=journal_path):
                    pass
        other = [x_arr[i * 4:(i + 1) * 4] for i in range(3)]
        with pytest.raises(RecoveryError):
            list(ttm_stream(other, u, mode=1, axis=0,
                            journal_path=journal_path))

    def test_accumulator_sidecar_resume(self, tmp_path):
        rng = np.random.default_rng(8)
        x_arr = rng.standard_normal((12, 6, 5))
        u = rng.standard_normal((4, 12))
        chunks = [x_arr[i * 3:(i + 1) * 3] for i in range(4)]
        journal_path = str(tmp_path / "j.json")
        ref = list(ttm_stream(chunks, u, mode=0, axis=0))[-1]
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="chunk-commit",
                       chunk=2)
            with pytest.raises(InjectedFault):
                list(ttm_stream(chunks, u, mode=0, axis=0,
                                journal_path=journal_path))
        counters = HotCounters()
        previous = install_hot_counters(counters)
        try:
            got = list(ttm_stream(chunks, u, mode=0, axis=0,
                                  journal_path=journal_path))[-1]
        finally:
            install_hot_counters(previous)
        assert counters.tiles_resumed == 2
        np.testing.assert_array_equal(
            np.asarray(got.data.data), np.asarray(ref.data.data)
        )

    def test_corrupt_sidecar_restarts_cleanly(self, tmp_path):
        rng = np.random.default_rng(9)
        x_arr = rng.standard_normal((12, 6, 5))
        u = rng.standard_normal((4, 12))
        chunks = [x_arr[i * 3:(i + 1) * 3] for i in range(4)]
        journal_path = str(tmp_path / "j.json")
        ref = list(ttm_stream(chunks, u, mode=0, axis=0))[-1]
        with fault_injection() as faults:
            faults.arm("crash", exc=InjectedFault, site="chunk-commit",
                       chunk=2)
            with pytest.raises(InjectedFault):
                list(ttm_stream(chunks, u, mode=0, axis=0,
                                journal_path=journal_path))
        sidecar = f"{journal_path}.accum.npy"
        with open(sidecar, "r+b") as fh:
            fh.seek(-8, os.SEEK_END)
            fh.write(b"\xff")
        got = list(ttm_stream(chunks, u, mode=0, axis=0,
                              journal_path=journal_path))[-1]
        # Restarted from scratch (sidecar untrusted) — same bits, since
        # the accumulation order is identical.
        np.testing.assert_array_equal(
            np.asarray(got.data.data), np.asarray(ref.data.data)
        )


# -- HOOI checkpointing --------------------------------------------------------


class TestHooiCheckpoint:
    def test_checkpointed_matches_plain(self, tmp_path):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((9, 8, 7)))
        plain = hooi(x, (3, 3, 3), max_iterations=5)
        ckpt = hooi(x, (3, 3, 3), max_iterations=5,
                    checkpoint_path=str(tmp_path / "j.json"))
        assert plain.fit == ckpt.fit
        assert plain.fit_history == ckpt.fit_history
        assert plain.iterations == ckpt.iterations

    def test_mismatched_checkpoint_refused(self, tmp_path):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((9, 8, 7)))
        path = str(tmp_path / "j.json")
        hooi(x, (3, 3, 3), max_iterations=2, checkpoint_path=path)
        with pytest.raises(RecoveryError):
            hooi(x, (4, 4, 4), max_iterations=2, checkpoint_path=path)

    def test_verify_hooi_checkpoint(self, tmp_path):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((9, 8, 7)))
        path = str(tmp_path / "j.json")
        hooi(x, (3, 3, 3), max_iterations=3, tolerance=0.0,
             checkpoint_path=path)
        report = verify_journal(path)
        assert report.ok and report.done
        with open(f"{path}.state.npz", "r+b") as fh:
            fh.seek(-8, os.SEEK_END)
            byte = fh.read(1)
            fh.seek(-8, os.SEEK_END)
            fh.write(bytes([byte[0] ^ 0x01]))
        assert not verify_journal(path).ok


# -- checksums -----------------------------------------------------------------


class TestChecksums:
    def test_region_checksum_layout_insensitive_content(self):
        rng = np.random.default_rng(4)
        c_arr = rng.standard_normal((6, 5))
        assert region_checksum(c_arr) == region_checksum(c_arr.copy())
        strided = np.ascontiguousarray(c_arr[::2])
        assert region_checksum(c_arr[::2]) == region_checksum(strided)

    def test_single_bit_flip_changes_crc(self):
        arr = np.zeros(64)
        before = region_checksum(arr)
        view = arr.view(np.uint8)
        view[100] ^= 0x01
        assert region_checksum(arr) != before
