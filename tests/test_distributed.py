"""Tests for the simulated distributed TTM."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distributed import (
    CommReport,
    ProcessGrid,
    best_grid,
    block_ranges,
    communication_words,
    distributed_ttm,
    enumerate_grids,
)
from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


class TestBlockRanges:
    def test_even_split(self):
        assert block_ranges(8, 4) == [(0, 2), (2, 4), (4, 6), (6, 8)]

    def test_uneven_split_front_loads(self):
        assert block_ranges(7, 3) == [(0, 3), (3, 5), (5, 7)]

    def test_single_part(self):
        assert block_ranges(5, 1) == [(0, 5)]

    def test_covers_everything(self):
        for extent in range(1, 20):
            for parts in range(1, extent + 1):
                ranges = block_ranges(extent, parts)
                assert ranges[0][0] == 0 and ranges[-1][1] == extent
                for (a, b), (c, _d) in zip(ranges, ranges[1:]):
                    assert b == c and b > a

    def test_too_many_parts_rejected(self):
        with pytest.raises(ShapeError):
            block_ranges(3, 4)


class TestProcessGrid:
    def test_size_and_ranks(self):
        grid = ProcessGrid((2, 1, 3))
        assert grid.size == 6
        assert len(list(grid.ranks())) == 6

    def test_local_slices(self):
        grid = ProcessGrid((2, 2))
        assert grid.local_slices((4, 6), (1, 0)) == (
            slice(2, 4), slice(0, 3)
        )

    def test_validate_for(self):
        grid = ProcessGrid((2, 2))
        with pytest.raises(ShapeError):
            grid.validate_for((4, 1))
        with pytest.raises(ShapeError):
            grid.validate_for((4, 4, 4))

    def test_invalid_dims(self):
        with pytest.raises(ShapeError):
            ProcessGrid((0, 2))

    def test_enumerate_grids(self):
        grids = enumerate_grids(2, 4)
        assert {g.dims for g in grids} == {(1, 4), (2, 2), (4, 1)}
        assert all(g.size == 4 for g in grids)

    def test_enumerate_grids_order3(self):
        grids = enumerate_grids(3, 6)
        assert all(g.size == 6 for g in grids)
        assert ProcessGrid((1, 2, 3)).dims in {g.dims for g in grids}


class TestDistributedTtm:
    @pytest.mark.parametrize("dims", [(1, 1, 1), (2, 1, 1), (1, 2, 1),
                                      (1, 1, 2), (2, 2, 1), (2, 1, 2),
                                      (2, 2, 2)])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_matches_oracle_all_grids_modes(self, dims, mode):
        rng = np.random.default_rng(0)
        shape = (6, 8, 4)
        x = DenseTensor(rng.standard_normal(shape))
        u = rng.standard_normal((3, shape[mode]))
        y, report = distributed_ttm(x, u, mode, ProcessGrid(dims))
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))
        assert isinstance(report, CommReport)

    def test_no_allreduce_when_mode_unpartitioned(self):
        rng = np.random.default_rng(1)
        x = DenseTensor(rng.standard_normal((8, 8, 8)))
        u = rng.standard_normal((4, 8))
        _y, report = distributed_ttm(x, u, 1, ProcessGrid((2, 1, 2)))
        assert report.allreduce_words == 0

    def test_allreduce_when_mode_partitioned(self):
        rng = np.random.default_rng(2)
        x = DenseTensor(rng.standard_normal((8, 8, 8)))
        u = rng.standard_normal((4, 8))
        _y, report = distributed_ttm(x, u, 1, ProcessGrid((1, 4, 1)))
        assert report.allreduce_words > 0

    def test_scatter_volume_counts_all_panels(self):
        rng = np.random.default_rng(3)
        x = DenseTensor(rng.standard_normal((8, 8)))
        u = rng.standard_normal((4, 8))
        _y, report = distributed_ttm(x, u, 1, ProcessGrid((2, 2)))
        # 4 ranks each get a (4 x 4) panel.
        assert report.scatter_u_words == 4 * 16

    def test_local_flops_sum_to_total(self):
        rng = np.random.default_rng(4)
        shape = (6, 8, 4)
        x = DenseTensor(rng.standard_normal(shape))
        u = rng.standard_normal((5, 8))
        _y, report = distributed_ttm(x, u, 1, ProcessGrid((2, 2, 2)))
        assert sum(report.local_flops) == 2 * 5 * x.size

    def test_load_imbalance_on_uneven_split(self):
        rng = np.random.default_rng(5)
        x = DenseTensor(rng.standard_normal((7, 6)))
        u = rng.standard_normal((2, 6))
        _y, report = distributed_ttm(x, u, 1, ProcessGrid((2, 1)))
        assert report.load_imbalance > 1.0

    def test_validation(self):
        x = DenseTensor.zeros((4, 4))
        with pytest.raises(TypeError):
            distributed_ttm(np.zeros((4, 4)), np.zeros((2, 4)), 0,
                            ProcessGrid((1, 1)))
        with pytest.raises(ShapeError):
            distributed_ttm(x, np.zeros((2, 5)), 0, ProcessGrid((1, 1)))
        with pytest.raises(ShapeError):
            distributed_ttm(x, np.zeros((2, 4)), 0, ProcessGrid((8, 1)))

    @settings(max_examples=20, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 6), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_property_any_feasible_grid_is_exact(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        dims = tuple(
            data.draw(st.integers(1, min(2, s))) for s in shape
        )
        rng = np.random.default_rng(6)
        x = DenseTensor(rng.standard_normal(shape))
        u = rng.standard_normal((2, shape[mode]))
        y, _report = distributed_ttm(x, u, mode, ProcessGrid(dims))
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))


class TestCommunicationModel:
    def test_model_matches_simulation(self):
        rng = np.random.default_rng(7)
        shape, j, mode = (8, 8, 8), 4, 1
        x = DenseTensor(rng.standard_normal(shape))
        u = rng.standard_normal((j, 8))
        for dims in ((2, 2, 1), (1, 4, 1), (1, 1, 4)):
            grid = ProcessGrid(dims)
            _y, report = distributed_ttm(x, u, mode, grid)
            assert report.total_comm_words == communication_words(
                shape, j, mode, grid
            )

    def test_best_grid_avoids_partitioning_the_mode(self):
        """With J << I_n, splitting the contracted mode forces an
        all-reduce; the model should prefer grids that avoid it."""
        grid = best_grid((64, 64, 64), j=4, mode=1, nproc=4)
        assert grid.dims[1] == 1

    def test_best_grid_feasibility(self):
        grid = best_grid((2, 64, 64), j=4, mode=0, nproc=8)
        assert grid.dims[0] <= 2
        with pytest.raises(ShapeError):
            best_grid((2, 2), j=1, mode=0, nproc=64)
