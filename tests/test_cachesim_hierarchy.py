"""Tests for the multi-level cache hierarchy."""

import pytest

from repro.cachesim import (
    CacheHierarchy,
    CacheModel,
    typical_hierarchy,
)
from repro.cachesim.trace import ttm_copy_trace, ttm_inplace_trace
from repro.util.errors import ShapeError


def small_hierarchy():
    return CacheHierarchy(
        [
            CacheModel(64, line_words=8),
            CacheModel(256, line_words=8),
            CacheModel(1024, line_words=8),
        ]
    )


class TestConstruction:
    def test_depth(self):
        assert small_hierarchy().depth == 3

    def test_empty_rejected(self):
        with pytest.raises(ShapeError):
            CacheHierarchy([])

    def test_mismatched_lines_rejected(self):
        with pytest.raises(ShapeError):
            CacheHierarchy(
                [CacheModel(64, line_words=8), CacheModel(256, line_words=4)]
            )

    def test_shrinking_levels_rejected(self):
        with pytest.raises(ShapeError):
            CacheHierarchy(
                [CacheModel(256, line_words=8), CacheModel(64, line_words=8)]
            )

    def test_typical_hierarchy_builds(self):
        h = typical_hierarchy()
        assert h.depth == 3
        assert h.levels[0].size_words < h.levels[-1].size_words


class TestAccessSemantics:
    def test_first_touch_misses_everywhere(self):
        h = small_hierarchy()
        assert h.access(0) == h.depth  # miss at all levels => memory

    def test_second_touch_hits_l1(self):
        h = small_hierarchy()
        h.access(0)
        assert h.access(1) == 0  # same line, L1 hit

    def test_l1_eviction_keeps_line_in_l2(self):
        h = small_hierarchy()
        h.access(0)
        # Stream enough distinct lines to evict line 0 from the 8-line L1
        # but keep it inside the 32-line L2.
        for line in range(1, 16):
            h.access(line * 8)
        assert h.access(0) == 1  # L1 miss, L2 hit

    def test_hit_rates_shape(self):
        h = small_hierarchy()
        for addr in range(64):
            h.access(addr)
        rates = h.hit_rates()
        assert len(rates) == 3
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_reset(self):
        h = small_hierarchy()
        h.access(0)
        h.reset()
        assert h.access(0) == h.depth


class TestTrafficFiltering:
    def test_memory_traffic_below_l1_traffic(self):
        """Each level filters: words to DRAM <= words out of L1."""
        h = small_hierarchy()
        h.run(ttm_inplace_trace((10, 10, 10), 4, 1))
        h.flush()
        boundary = h.words_per_boundary()
        assert boundary[-1] <= boundary[0]

    def test_copy_ttm_pushes_more_to_memory_than_inplace(self):
        """The figure-4 story holds at the DRAM boundary of a multi-level
        hierarchy, not just in the two-level model."""
        h1 = small_hierarchy()
        h1.run(ttm_inplace_trace((12, 12, 12), 4, 1))
        h1.flush()
        h2 = small_hierarchy()
        h2.run(ttm_copy_trace((12, 12, 12), 4, 1))
        h2.flush()
        assert h2.words_to_memory() > h1.words_to_memory()
