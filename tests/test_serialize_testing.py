"""Tests for plan serialization and the public verification helpers."""

import numpy as np
import pytest

from repro.core import InTensLi, plans_from_json, plans_to_json
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.serialize import (
    load_plans,
    plan_from_dict,
    plan_to_dict,
    save_plans,
)
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.testing import (
    DEFAULT_CASES,
    DEGENERATE_CASES,
    assert_ttm_consistent,
    ttm_reference,
)
from repro.util.errors import PlanError


class TestPlanSerialization:
    def test_dict_roundtrip(self):
        plan = default_plan((6, 7, 8, 9), 1, 4, ROW_MAJOR, loop_threads=2,
                            kernel="blas")
        back = plan_from_dict(plan_to_dict(plan))
        assert back == plan

    def test_col_major_backward_roundtrip(self):
        plan = default_plan((6, 7, 8), 2, 4, COL_MAJOR)
        assert plan_from_dict(plan_to_dict(plan)) == plan

    def test_json_roundtrip_many(self):
        plans = [
            default_plan((6, 7, 8), m, 4, ROW_MAJOR) for m in range(3)
        ]
        back = plans_from_json(plans_to_json(plans))
        assert back == plans

    def test_file_roundtrip(self, tmp_path):
        plans = [default_plan((5, 5, 5), 0, 2, ROW_MAJOR)]
        path = tmp_path / "plans.json"
        save_plans(plans, str(path))
        assert load_plans(str(path)) == plans

    def test_missing_field_raises(self):
        payload = plan_to_dict(default_plan((4, 4), 0, 2, ROW_MAJOR))
        del payload["strategy"]
        with pytest.raises(PlanError):
            plan_from_dict(payload)

    def test_corrupt_plan_is_revalidated(self):
        payload = plan_to_dict(default_plan((4, 4, 4), 0, 2, ROW_MAJOR))
        payload["component_modes"] = [0, 2]  # illegal: non-consecutive
        with pytest.raises(PlanError):
            plan_from_dict(payload)

    def test_non_list_json_rejected(self):
        with pytest.raises(PlanError):
            plans_from_json("{}")

    def test_deserialized_plan_executes(self):
        rng = np.random.default_rng(0)
        plan = plan_from_dict(
            plan_to_dict(default_plan((5, 6, 7), 1, 3, ROW_MAJOR))
        )
        x = DenseTensor(rng.standard_normal((5, 6, 7)))
        u = rng.standard_normal((3, 6))
        y = ttm_inplace(x, u, plan=plan)
        assert np.allclose(y.data, ttm_reference(x.data, u, 1))


class TestPlanSerializationProperty:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 8), min_size=2, max_size=5),
        j=st.integers(1, 6),
        data=st.data(),
    )
    def test_property_random_plans_roundtrip(self, shape, j, data):
        """Any legal plan survives dict/JSON round-trips bit-identically."""
        st = self.st
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        from repro.core.partition import (
            available_modes_for_strategy,
            strategy_for,
        )

        strategy = strategy_for(len(shape), mode, layout)
        available = available_modes_for_strategy(len(shape), mode, strategy)
        degree = data.draw(st.integers(0, len(available)))
        plan = default_plan(
            shape, mode, j, layout, degree=degree,
            loop_threads=data.draw(st.integers(1, 8)),
            kernel_threads=data.draw(st.integers(1, 8)),
            kernel=data.draw(st.sampled_from(["auto", "blas", "blocked"])),
        )
        assert plan_from_dict(plan_to_dict(plan)) == plan
        assert plans_from_json(plans_to_json([plan])) == [plan]


class TestInTensLiCachePersistence:
    def test_save_and_load_cache(self, tmp_path):
        lib = InTensLi()
        lib.plan((20, 20, 20), 0, 4)
        lib.plan((20, 20, 20), 1, 4)
        path = tmp_path / "cache.json"
        assert lib.save_plan_cache(str(path)) == 2

        fresh = InTensLi()
        assert fresh.load_plan_cache(str(path)) == 2
        assert fresh.cached_plans == 2
        # Loaded plan is used verbatim (no re-estimation).
        assert fresh.plan((20, 20, 20), 0, 4) == lib.plan((20, 20, 20), 0, 4)

    def test_loaded_plans_take_precedence(self, tmp_path):
        custom = default_plan((16, 16, 16), 0, 4, ROW_MAJOR, degree=1)
        from repro.core.serialize import save_plans

        path = tmp_path / "pinned.json"
        save_plans([custom], str(path))
        fresh = InTensLi()
        fresh.load_plan_cache(str(path))
        assert fresh.plan((16, 16, 16), 0, 4) == custom


class TestPublicOracle:
    def test_reference_matches_einsum(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((4, 5, 6))
        u = rng.standard_normal((3, 5))
        assert np.allclose(
            ttm_reference(x, u, 1), np.einsum("jk,ikl->ijl", u, x)
        )

    def test_assert_consistent_passes_for_inplace(self, ttm_dtype):
        checked = assert_ttm_consistent(ttm_inplace, dtype=ttm_dtype)
        assert checked == 2 * (len(DEFAULT_CASES) + len(DEGENERATE_CASES))

    def test_assert_consistent_passes_for_inplace_float32(self):
        checked = assert_ttm_consistent(ttm_inplace, dtype="float32")
        assert checked == 2 * (len(DEFAULT_CASES) + len(DEGENERATE_CASES))

    def test_assert_consistent_catches_wrong_values(self):
        def broken(x, u, mode):
            return ttm_inplace(x, u, mode).data * 1.001

        with pytest.raises(AssertionError, match="value mismatch"):
            assert_ttm_consistent(broken)

    def test_assert_consistent_catches_wrong_shape(self):
        def broken(x, u, mode):
            return np.zeros((1, 1))

        with pytest.raises(AssertionError, match="shape mismatch"):
            assert_ttm_consistent(broken)

    def test_accepts_ndarray_returns(self):
        def as_array(x, u, mode):
            return ttm_inplace(x, u, mode).data

        assert assert_ttm_consistent(as_array) > 0
