"""Tests for the arithmetic-intensity equations (4)-(6) and roofline model."""

import math

import pytest

from repro.analysis import (
    CORE_I7_4770K,
    PLATFORMS,
    XEON_E7_4820,
    RooflinePlatform,
    attainable_gflops,
    copy_penalty,
    copy_ttm_intensity,
    equivalent_gemm_dim,
    gemm_intensity_bound,
    gemm_model_gflops,
    inplace_ttm_intensity,
    intensity_regime_holds,
    min_words_moved,
    shape_intensity,
    ttm_copy_words,
    ttm_flops,
)
from repro.analysis.roofline import working_set_bytes


class TestIntensityEquations:
    def test_eq4_bound_at_paper_cache(self):
        # Z = 2^20 words (8 MiB): A <= 8 * 2^10 = 8192 flops/word.
        assert gemm_intensity_bound(2**20) == pytest.approx(8192.0)

    def test_eq5_paper_example_penalty(self):
        """Paper: Z = 2^20, d = 3, n ~ 1600 => m ~ 254 and 1 + A/m ~ 33."""
        m = round(1600 ** (3 / 4))  # m = n^{3/(d+1)}
        assert m in (253, 254)  # paper rounds to 254
        penalty = copy_penalty(2**20, m)
        assert 30.0 < penalty < 35.0

    def test_eq5_intensity_is_bound_over_penalty(self):
        z, m = 2**18, 100
        assert copy_ttm_intensity(z, m) == pytest.approx(
            gemm_intensity_bound(z) / copy_penalty(z, m)
        )

    def test_eq6_inplace_restores_bound(self):
        assert inplace_ttm_intensity(2**20) == gemm_intensity_bound(2**20)

    def test_penalty_grows_as_m_shrinks(self):
        z = 2**20
        assert copy_penalty(z, 50) > copy_penalty(z, 500)

    def test_regime_condition(self):
        z = 2**10
        assert intensity_regime_holds(1e12, z)
        assert not intensity_regime_holds(10.0, z)

    def test_min_words_moved_clamped(self):
        assert min_words_moved(1.0, 2**20) == 0.0
        assert min_words_moved(1e12, 2**10) > 0.0

    def test_equivalent_gemm_dim_inverts_paper_relation(self):
        # n = 1600, d = 3: m = n^{3/4}; check the forward map.
        m = 254
        n = equivalent_gemm_dim(m, 3)
        assert n == pytest.approx(m ** (4 / 3))

    def test_ttm_flops_mode_independent(self):
        assert ttm_flops((10, 20, 30), 5) == 2 * 5 * 6000

    def test_ttm_copy_words(self):
        assert ttm_copy_words((10, 10, 10)) == 2000

    def test_validation(self):
        with pytest.raises(ValueError):
            gemm_intensity_bound(0)
        with pytest.raises(ValueError):
            copy_penalty(2**10, 0)


class TestRooflinePlatforms:
    def test_table2_presets(self):
        assert CORE_I7_4770K.peak_gflops == 224.0
        assert CORE_I7_4770K.cores == 4
        assert CORE_I7_4770K.llc_bytes == 8 * 1024**2
        assert XEON_E7_4820.peak_gflops == 128.0
        assert XEON_E7_4820.cores == 16
        assert XEON_E7_4820.bandwidth_gbs == 34.2
        assert set(PLATFORMS) == {"core-i7-4770k", "xeon-e7-4820"}

    def test_llc_words(self):
        assert CORE_I7_4770K.llc_words == 2**20

    def test_peak_at_scales_with_cores(self):
        assert CORE_I7_4770K.peak_at(1) == pytest.approx(56.0)
        assert CORE_I7_4770K.peak_at(4) == pytest.approx(224.0)
        # SMT threads beyond physical cores add no flops.
        assert CORE_I7_4770K.peak_at(8) == pytest.approx(224.0)

    def test_platform_validation(self):
        with pytest.raises(ValueError):
            RooflinePlatform("x", 1.0, 1.0, 0, 1, 1)


class TestShapeIntensity:
    def test_square_intensity(self):
        # n x n x n: I = 2n/3.
        assert shape_intensity(90, 90, 90) == pytest.approx(60.0)

    def test_skinny_m_limits_intensity(self):
        # m = 16 with huge k, n: I -> 2 / (1/16) = 32.
        assert shape_intensity(16, 10**6, 10**6) == pytest.approx(32.0, rel=0.01)

    def test_cache_cap(self):
        capped = shape_intensity(10**5, 10**5, 10**5, z_words=2**10)
        assert capped == pytest.approx(8 * math.sqrt(2**10))

    def test_working_set_bytes(self):
        assert working_set_bytes(2, 3, 4) == 8 * (6 + 12 + 8)


class TestAttainable:
    def test_memory_bound_small_intensity(self):
        got = attainable_gflops(1.0, CORE_I7_4770K, threads=4)
        assert got == pytest.approx(25.6 / 8.0)

    def test_compute_bound_large_intensity(self):
        got = attainable_gflops(1e9, CORE_I7_4770K, threads=4)
        assert got == pytest.approx(224.0)


class TestGemmModel:
    def test_single_thread_m16_matches_paper_scale(self):
        """Paper fig 5(a): ~38 GFLOP/s max for m=16 single thread on i7."""
        best = max(
            gemm_model_gflops(16, 2**ke, 2**ne, CORE_I7_4770K, threads=1)
            for ke in range(4, 13)
            for ne in range(4, 13)
        )
        assert 25.0 < best < 60.0

    def test_four_thread_m16_memory_bound(self):
        """Paper fig 5(b): ~140 GFLOP/s max at 4 threads; our roofline gives
        the same order (bandwidth-limited below peak 224)."""
        best = max(
            gemm_model_gflops(16, 2**ke, 2**ne, CORE_I7_4770K, threads=4)
            for ke in range(4, 13)
            for ne in range(4, 13)
        )
        assert 60.0 < best < 224.0

    def test_variation_factor_across_shapes(self):
        """Paper: performance varies by roughly a factor of 6 over the grid."""
        grid = [
            gemm_model_gflops(16, 2**ke, 2**ne, CORE_I7_4770K, threads=4)
            for ke in range(4, 13)
            for ne in range(4, 13)
        ]
        assert max(grid) / min(grid) > 4.0

    def test_tiny_problem_is_slow(self):
        assert gemm_model_gflops(2, 2, 2, CORE_I7_4770K) < 1.0

    def test_nonnegative(self):
        assert gemm_model_gflops(1, 1, 1, XEON_E7_4820) >= 0.0
