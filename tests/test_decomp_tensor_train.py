"""Tests for the tensor-train decomposition (TT-SVD)."""

import numpy as np
import pytest

from repro.decomp import TensorTrain, tt_reconstruct, tt_svd
from repro.decomp.tensor_train import tt_error
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import low_rank_tensor, random_tensor
from repro.util.errors import ShapeError


class TestTtSvd:
    def test_exact_reconstruction_at_full_rank(self):
        x = random_tensor((4, 5, 6), seed=0)
        tt = tt_svd(x)
        assert tt_error(x, tt) < 1e-10

    def test_rank_caps_respected(self):
        x = random_tensor((4, 5, 6, 4), seed=1)
        tt = tt_svd(x, max_rank=3)
        assert all(r <= 3 for r in tt.ranks[1:-1])
        assert tt.ranks[0] == tt.ranks[-1] == 1

    def test_per_mode_rank_caps(self):
        x = random_tensor((4, 5, 6), seed=2)
        tt = tt_svd(x, max_rank=(2, 3))
        assert tt.ranks[1] <= 2 and tt.ranks[2] <= 3

    def test_core_shapes_chain(self):
        x = random_tensor((4, 5, 6), seed=3)
        tt = tt_svd(x, max_rank=3)
        ranks = tt.ranks
        for k, core in enumerate(tt.cores):
            assert core.shape == (ranks[k], x.shape[k], ranks[k + 1])

    def test_tolerance_bounds_error(self):
        x = random_tensor((5, 5, 5, 5), seed=4)
        for tol in (0.5, 0.2, 0.05):
            tt = tt_svd(x, tolerance=tol)
            assert tt_error(x, tt) <= tol + 1e-12

    def test_tighter_tolerance_needs_more_parameters(self):
        x = random_tensor((5, 5, 5, 5), seed=5)
        loose = tt_svd(x, tolerance=0.5)
        tight = tt_svd(x, tolerance=0.01)
        assert tight.n_parameters >= loose.n_parameters

    def test_low_rank_tensor_compresses_losslessly(self):
        x = low_rank_tensor((6, 6, 6), 2, seed=6)
        tt = tt_svd(x, tolerance=1e-10)
        assert tt_error(x, tt) < 1e-8
        assert tt.compression > 1.0

    def test_order2_is_svd(self):
        x = random_tensor((6, 8), seed=7)
        tt = tt_svd(x, max_rank=3)
        assert len(tt.cores) == 2
        # Best rank-3 approximation error equals the SVD tail.
        s = np.linalg.svd(x.data, compute_uv=False)
        expected = np.sqrt(np.sum(s[3:] ** 2)) / np.linalg.norm(x.data)
        assert tt_error(x, tt) == pytest.approx(expected, abs=1e-10)

    def test_validation(self):
        x = random_tensor((4, 4, 4), seed=8)
        with pytest.raises(TypeError):
            tt_svd(np.zeros((4, 4)))
        with pytest.raises(ShapeError):
            tt_svd(x, tolerance=-1.0)
        with pytest.raises(ShapeError):
            tt_svd(x, max_rank=(2,))
        with pytest.raises(ShapeError):
            tt_svd(x, max_rank=(0, 2))


class TestReconstruct:
    def test_roundtrip_values(self):
        x = random_tensor((3, 4, 5), seed=9)
        tt = tt_svd(x)
        back = tt_reconstruct(tt)
        assert isinstance(back, DenseTensor)
        assert np.allclose(back.data, x.data, atol=1e-10)

    def test_zero_tensor_error_is_zero(self):
        x = DenseTensor.zeros((3, 3, 3))
        tt = tt_svd(x, max_rank=1)
        assert tt_error(x, tt) == 0.0


class TestTensorTrainProperties:
    def test_n_parameters(self):
        cores = [np.zeros((1, 4, 2)), np.zeros((2, 5, 1))]
        tt = TensorTrain(cores=cores, shape=(4, 5))
        assert tt.n_parameters == 8 + 10
        assert tt.compression == pytest.approx(20 / 18)
