"""Tests for semi-sparse TTM and memory-efficient sparse Tucker."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.decomp import hooi, hosvd
from repro.sparse import (
    SparseTensor,
    hooi_sparse,
    hosvd_sparse,
    random_sparse,
    ttm_semisparse,
    ttm_sparse,
)
from repro.sparse.tucker import project_all_but
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


class TestTtmSemisparse:
    def setup_semi(self, shape=(5, 6, 7), density=0.2, mode=1, j=3, seed=0):
        x = random_sparse(shape, density, seed=seed)
        u = np.random.default_rng(seed + 1).standard_normal((j, shape[mode]))
        return x, ttm_sparse(x, u, mode), u

    @pytest.mark.parametrize("second_mode", [0, 2])
    def test_product_on_sparse_mode_matches_oracle(self, second_mode):
        x, semi, _u1 = self.setup_semi()
        rng = np.random.default_rng(2)
        u2 = rng.standard_normal((2, semi.shape[second_mode]))
        result = ttm_semisparse(semi, u2, second_mode)
        expect = ttm_oracle(semi.to_dense().data, u2, second_mode)
        assert np.allclose(result.to_dense().data, expect)
        assert result.dense_mode == semi.dense_mode

    def test_product_on_dense_mode_matches_oracle(self):
        _x, semi, _u1 = self.setup_semi(mode=1, j=4)
        rng = np.random.default_rng(3)
        u2 = rng.standard_normal((2, 4))
        result = ttm_semisparse(semi, u2, 1)
        expect = ttm_oracle(semi.to_dense().data, u2, 1)
        assert np.allclose(result.to_dense().data, expect)
        # Fibers unchanged when transforming the dense mode.
        assert result.n_fibers == semi.n_fibers

    def test_chain_over_all_modes_matches_dense_chain(self):
        shape = (4, 5, 6)
        x = random_sparse(shape, 0.3, seed=4)
        rng = np.random.default_rng(5)
        us = [rng.standard_normal((2, s)) for s in shape]
        semi = ttm_sparse(x, us[0], 0)
        semi = ttm_semisparse(semi, us[1], 1)
        semi = ttm_semisparse(semi, us[2], 2)
        expect = x.to_dense().data
        for mode, u in enumerate(us):
            expect = ttm_oracle(expect, u, mode)
        assert np.allclose(semi.to_dense().data, expect)

    def test_order2_semisparse(self):
        x = random_sparse((6, 5), 0.4, seed=6)
        u1 = np.random.default_rng(7).standard_normal((3, 6))
        semi = ttm_sparse(x, u1, 0)
        u2 = np.random.default_rng(8).standard_normal((2, 5))
        result = ttm_semisparse(semi, u2, 1)
        expect = ttm_oracle(ttm_oracle(x.to_dense().data, u1, 0), u2, 1)
        assert np.allclose(result.to_dense().data, expect)

    def test_empty_semisparse(self):
        x = SparseTensor.empty((4, 5, 6))
        semi = ttm_sparse(x, np.ones((2, 5)), 1)
        result = ttm_semisparse(semi, np.ones((3, 4)), 0)
        assert result.n_fibers == 0
        assert np.all(result.to_dense().data == 0.0)

    def test_validation(self):
        _x, semi, _u = self.setup_semi()
        with pytest.raises(TypeError):
            ttm_semisparse(np.zeros((2, 2)), np.ones((2, 2)), 0)
        with pytest.raises(ShapeError):
            ttm_semisparse(semi, np.ones((2, 99)), 0)

    @settings(max_examples=20, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_property_semisparse_chain_matches_oracle(self, shape, data):
        first = data.draw(st.integers(0, len(shape) - 1))
        second = data.draw(
            st.integers(0, len(shape) - 1).filter(lambda m: m != first)
        )
        x = random_sparse(shape, 0.3, seed=9)
        rng = np.random.default_rng(10)
        u1 = rng.standard_normal((2, shape[first]))
        u2 = rng.standard_normal((3, shape[second]))
        semi = ttm_semisparse(ttm_sparse(x, u1, first), u2, second)
        expect = ttm_oracle(
            ttm_oracle(x.to_dense().data, u1, first), u2, second
        )
        assert np.allclose(semi.to_dense().data, expect)


class TestProjectAllBut:
    def test_matches_dense_projection(self):
        shape = (5, 6, 7)
        x = random_sparse(shape, 0.25, seed=11)
        rng = np.random.default_rng(12)
        factors = [rng.standard_normal((s, 2)) for s in shape]
        got = project_all_but(x, factors, skip=1)
        expect = x.to_dense().data
        for mode in (0, 2):
            expect = ttm_oracle(expect, factors[mode].T, mode)
        assert np.allclose(got.data, expect)

    def test_skip_none_projects_everything(self):
        shape = (4, 5, 6)
        x = random_sparse(shape, 0.25, seed=13)
        rng = np.random.default_rng(14)
        factors = [rng.standard_normal((s, 2)) for s in shape]
        got = project_all_but(x, factors, skip=None)
        assert got.shape == (2, 2, 2)


def sparse_low_rank(shape, ranks, density=0.15, seed=0):
    """A sparse tensor that *is* exactly low rank after sparsification is
    impossible in general; instead build a dense low-rank tensor and keep
    it fully (density=1) or threshold it for approximate tests."""
    from repro.tensor.generate import low_rank_tensor

    dense = low_rank_tensor(shape, ranks, seed=seed)
    return SparseTensor.from_dense(dense), dense


class TestSparseTucker:
    def test_hosvd_sparse_matches_dense_hosvd(self):
        shape, ranks = (7, 6, 5), (2, 2, 2)
        x_sp, x_dense = sparse_low_rank(shape, ranks, seed=15)
        sparse_result = hosvd_sparse(x_sp, ranks)
        dense_result = hosvd(x_dense, ranks)
        assert sparse_result.fit == pytest.approx(dense_result.fit, abs=1e-8)
        assert np.allclose(
            np.abs(sparse_result.core.data),
            np.abs(dense_result.core.data),
            atol=1e-7,
        )

    def test_hosvd_recovers_planted_rank(self):
        shape, ranks = (8, 7, 6), (2, 3, 2)
        x_sp, _ = sparse_low_rank(shape, ranks, seed=16)
        result = hosvd_sparse(x_sp, ranks)
        assert result.fit == pytest.approx(1.0, abs=1e-6)

    def test_hooi_sparse_on_genuinely_sparse_input(self):
        x = random_sparse((10, 9, 8), 0.1, seed=17)
        sparse_result = hooi_sparse(x, (3, 3, 3), max_iterations=3,
                                    tolerance=0.0)
        dense_result = hooi(x.to_dense(), (3, 3, 3), max_iterations=3,
                            tolerance=0.0)
        assert sparse_result.fit == pytest.approx(dense_result.fit, abs=1e-8)

    def test_hooi_fit_non_decreasing(self):
        x = random_sparse((8, 8, 8), 0.15, seed=18)
        result = hooi_sparse(x, 2, max_iterations=5, tolerance=0.0)
        fits = result.fit_history
        assert all(b >= a - 1e-9 for a, b in zip(fits, fits[1:]))

    def test_integer_rank_broadcasts(self):
        x = random_sparse((6, 6, 6), 0.2, seed=19)
        result = hosvd_sparse(x, 2)
        assert result.core.shape == (2, 2, 2)

    def test_validation(self):
        x = random_sparse((4, 4), 0.5, seed=20)
        with pytest.raises(TypeError):
            hosvd_sparse(np.zeros((4, 4)), 2)
        with pytest.raises(ShapeError):
            hosvd_sparse(x, (2,))
        with pytest.raises(ShapeError):
            hooi_sparse(x, 2, max_iterations=0)

    def test_cp_als_sparse_matches_dense(self):
        from repro.decomp.cp import CpResult, cp_als, cp_reconstruct
        from repro.sparse import cp_als_sparse

        rng = np.random.default_rng(22)
        factors = [rng.standard_normal((s, 2)) for s in (8, 7, 6)]
        dense = cp_reconstruct(
            CpResult(weights=np.ones(2), factors=factors, fit=1.0)
        )
        sparse = SparseTensor.from_dense(dense)
        a = cp_als_sparse(sparse, 2, max_iterations=20, tolerance=0.0)
        b = cp_als(dense, 2, max_iterations=20, tolerance=0.0)
        # Different MTTKRP accumulation orders: agreement to fp tolerance.
        assert a.fit == pytest.approx(b.fit, abs=1e-6)

    def test_cp_als_sparse_never_densifies(self):
        """The proxy hands cp_als only the sparse values for the norm; a
        genuinely sparse large-shape tensor must work without dense
        allocation (would be 10^9 elements here)."""
        from repro.sparse import cp_als_sparse

        x = random_sparse((1000, 1000, 1000), density=2e-7, seed=23)
        assert 0 < x.nnz < 500
        result = cp_als_sparse(x, 1, max_iterations=2, tolerance=0.0)
        assert len(result.factors) == 3
        assert result.factors[0].shape == (1000, 1)

    def test_cp_als_sparse_validation(self):
        from repro.sparse import cp_als_sparse

        with pytest.raises(TypeError):
            cp_als_sparse(np.zeros((3, 3)), 2)

    def test_order4_sparse_tucker(self):
        x = random_sparse((5, 4, 5, 4), 0.15, seed=21)
        result = hooi_sparse(x, 2, max_iterations=2, tolerance=0.0)
        dense = hooi(x.to_dense(), 2, max_iterations=2, tolerance=0.0)
        assert result.fit == pytest.approx(dense.fit, abs=1e-8)
