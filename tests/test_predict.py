"""Tests for plan performance prediction."""

import pytest

from repro.analysis import CORE_I7_4770K
from repro.core import enumerate_plans, predict_gflops, predict_seconds, rank_plans
from repro.core.inttm import default_plan
from repro.gemm.bench import GemmProfile, ShapePoint, default_shape_grid, synthetic_profile
from repro.tensor.layout import ROW_MAJOR


@pytest.fixture()
def profile():
    return synthetic_profile(
        default_shape_grid(k_exponents=range(4, 12), n_exponents=range(4, 12)),
        CORE_I7_4770K,
        threads=(1, 4),
    )


class TestPredictSeconds:
    def test_positive_and_flops_consistent(self, profile):
        plan = default_plan((64, 64, 64), 1, 16, ROW_MAJOR)
        seconds = predict_seconds(plan, profile)
        assert seconds > 0.0
        gflops = predict_gflops(plan, profile)
        assert gflops == pytest.approx(plan.total_flops / seconds / 1e9)

    def test_loop_overhead_penalizes_many_iterations(self, profile):
        few = default_plan((64, 64, 64), 1, 16, ROW_MAJOR, degree=1)
        many = default_plan((64, 64, 64, 64), 1, 16, ROW_MAJOR, degree=1)
        # Same kernel shape; 'many' has 64x the iterations.
        assert many.loop_iterations == 64 * few.loop_iterations
        t_few = predict_seconds(few, profile, loop_overhead=1e-3)
        t_many = predict_seconds(many, profile, loop_overhead=1e-3)
        assert t_many > 32 * t_few

    def test_loop_threads_divide_time(self, profile):
        serial = default_plan((64, 64, 64), 1, 16, ROW_MAJOR, degree=1)
        parallel = default_plan(
            (64, 64, 64), 1, 16, ROW_MAJOR, degree=1, loop_threads=4
        )
        assert predict_seconds(parallel, profile) == pytest.approx(
            predict_seconds(serial, profile) / 4
        )

    def test_kernel_threads_fall_back_to_profiled_counts(self, profile):
        plan = default_plan(
            (64, 64, 64), 1, 16, ROW_MAJOR, degree=1, kernel_threads=3
        )
        # Profile has threads (1, 4); 3 falls back to 1 without error.
        assert predict_seconds(plan, profile) > 0.0

    def test_zero_rate_profile_raises(self):
        from repro.util.errors import BenchmarkError

        bad = GemmProfile([ShapePoint(16, 16, 16, 1, 0.0)])
        plan = default_plan((16, 16, 16), 1, 16, ROW_MAJOR, degree=1)
        with pytest.raises(BenchmarkError):
            predict_seconds(plan, bad)


class TestRankPlans:
    def test_sorted_descending(self, profile):
        plans = enumerate_plans((20,) * 5, 0, 16, ROW_MAJOR, 1)
        ranked = rank_plans(plans, profile)
        rates = [r for _p, r in ranked]
        assert rates == sorted(rates, reverse=True)
        assert len(ranked) == len(plans)

    def test_tiny_kernels_rank_last(self, profile):
        plans = enumerate_plans((20,) * 5, 0, 16, ROW_MAJOR, 1)
        ranked = rank_plans(plans, profile)
        assert ranked[-1][0].degree == 1  # the starved degree-1 plan
