"""Golden-plan regression tests: the planner's decisions, pinned.

The estimator is the part of this system most likely to regress
*silently* — a wrong degree or thread split still computes the right
numbers, just slower.  These tests serialize the full decision tuple
(strategy, degree |M_C|, loop order, batch modes, P_L/P_C split,
kernel) for every geometry in :data:`repro.testing.DEFAULT_CASES` x
both layouts x two thread budgets into committed JSON fixtures under
``tests/golden/``, and fail with a field-level diff when any decision
changes.

When a planner change is *intentional*, regenerate with::

    python -m pytest tests/test_golden_plans.py --regen-golden

and commit the updated fixtures — the diff in review then documents
exactly which inputs changed plans.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.core import InTensLi
from repro.testing import DEFAULT_CASES
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR

GOLDEN_DIR = Path(__file__).parent / "golden"

#: Thread budgets pinned by fixtures: serial, and a budget that forces
#: the PTH rule to actually split P_L/P_C.
THREAD_BUDGETS = (1, 4)

#: Element types pinned by fixtures.  float64 keeps the original
#: ``plans_t{N}.json`` files byte-identical; float32 halves every byte
#: threshold (MSTH/MLTH window, PTH split) and gets its own fixture
#: files, so planner drift is pinned per dtype.
DTYPES = ("float64", "float32")

#: The decision fields a fixture pins (everything the tuner chooses).
DECISION_FIELDS = (
    "strategy",
    "degree",
    "component_modes",
    "loop_modes",
    "batch_modes",
    "loop_threads",
    "kernel_threads",
    "kernel",
)


def golden_path(threads: int, dtype: str = "float64") -> Path:
    suffix = "" if dtype == "float64" else f"_{dtype}"
    return GOLDEN_DIR / f"plans_t{threads}{suffix}.json"


def decision_key(shape, mode, j, layout, threads) -> str:
    dims = "x".join(str(s) for s in shape)
    return f"{dims}|m{mode}|J{j}|{layout.name}|T{threads}"


def plan_decision(plan) -> dict:
    return {
        "strategy": plan.strategy.value,
        "degree": plan.degree,
        "component_modes": list(plan.component_modes),
        "loop_modes": list(plan.loop_modes),
        "batch_modes": list(plan.batch_modes),
        "loop_threads": plan.loop_threads,
        "kernel_threads": plan.kernel_threads,
        "kernel": plan.kernel,
    }


def compute_decisions(threads: int, dtype: str = "float64") -> dict[str, dict]:
    """What the planner decides today for the whole golden grid.

    Deterministic: the synthetic (roofline-model) GEMM profile and the
    platform preset involve no measurement, so the same geometry always
    maps to the same plan on every host.  The dtype lives in the fixture
    *filename*, not the key, so float64 fixtures predate the dtype axis
    unchanged.
    """
    lib = InTensLi(max_threads=threads)
    decisions: dict[str, dict] = {}
    for layout in (ROW_MAJOR, COL_MAJOR):
        for shape, j, mode in DEFAULT_CASES:
            plan = lib.plan(shape, mode, j, layout, dtype=dtype)
            key = decision_key(shape, mode, j, layout, threads)
            decisions[key] = plan_decision(plan)
    return decisions


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("threads", THREAD_BUDGETS)
def test_golden_plans_match_fixture(threads, dtype, request):
    decisions = compute_decisions(threads, dtype)
    path = golden_path(threads, dtype)
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(
            json.dumps(decisions, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {path}")
    assert path.exists(), (
        f"golden fixture {path} is missing; generate it with "
        f"`python -m pytest {__file__} --regen-golden` and commit it"
    )
    golden = json.loads(path.read_text())

    diffs: list[str] = []
    for key in sorted(set(golden) | set(decisions)):
        if key not in decisions:
            diffs.append(f"{key}: in fixture but no longer planned")
            continue
        if key not in golden:
            diffs.append(f"{key}: planned but missing from fixture")
            continue
        for field in DECISION_FIELDS:
            want, got = golden[key].get(field), decisions[key][field]
            if want != got:
                diffs.append(f"{key}: {field} changed {want!r} -> {got!r}")
    if diffs:
        detail = "\n  ".join(diffs)
        pytest.fail(
            f"{len(diffs)} planner decision(s) drifted from "
            f"{path.name}:\n  {detail}\n"
            "If this change is intentional, regenerate the fixtures with "
            "`python -m pytest tests/test_golden_plans.py --regen-golden` "
            "and commit the diff."
        )


@pytest.mark.parametrize("dtype", DTYPES)
@pytest.mark.parametrize("threads", THREAD_BUDGETS)
def test_golden_fixture_covers_every_geometry(threads, dtype, request):
    """Each fixture has exactly one entry per DEFAULT_CASES x layout."""
    if request.config.getoption("--regen-golden"):
        pytest.skip("fixtures are being regenerated")
    path = golden_path(threads, dtype)
    assert path.exists(), f"golden fixture {path} is missing"
    golden = json.loads(path.read_text())
    expected = {
        decision_key(shape, mode, j, layout, threads)
        for layout in (ROW_MAJOR, COL_MAJOR)
        for shape, j, mode in DEFAULT_CASES
    }
    assert set(golden) == expected
    for key, decision in golden.items():
        missing = [f for f in DECISION_FIELDS if f not in decision]
        assert not missing, f"{key} lacks fields {missing}"


def test_golden_plans_are_executable():
    """Every pinned decision still constructs a valid, runnable plan."""
    import numpy as np

    from repro.tensor.dense import DenseTensor

    lib = InTensLi(max_threads=1)
    rng = np.random.default_rng(0)
    # One representative geometry per order is enough to smoke-execute.
    seen_orders: set[int] = set()
    for shape, j, mode in DEFAULT_CASES:
        if len(shape) in seen_orders:
            continue
        seen_orders.add(len(shape))
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = lib.plan(shape, mode, j, ROW_MAJOR)
        y = lib.execute(plan, x, u)
        assert y.shape == plan.out_shape
