"""Fused chain planning and execution: the whole-chain contract.

Three equivalence legs anchor everything: the fused executor, the legacy
step-at-a-time path, and the NumPy oracle must agree elementwise for any
chain, in any order, in either layout, at either float width.  On top of
that the suite pins the *resource* contract — at most two intermediate
allocations per chain, zero once the pool is warm — and the planner's
decisions via a golden fixture (regenerate with ``--regen-golden``).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import InTensLi
from repro.core.chain import (
    MAX_OPTIMAL_STEPS,
    ChainPlan,
    ChainStep,
    ScratchPool,
    chain_cost,
    chain_flops,
    chain_intermediate_bytes,
    execute_chain,
    greedy_order,
    optimal_order,
    plan_chain,
    ttm_chain,
)
from repro.core.explain import explain_chain
from repro.core.inttm import ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import DtypeError, PlanError, ShapeError
from tests.helpers import ttm_oracle

GOLDEN_DIR = Path(__file__).parent / "golden"
CHAIN_GOLDEN = GOLDEN_DIR / "chain_plans.json"

#: Chain signatures pinned by the golden fixture: (shape, ((mode, J), ...)).
GOLDEN_CHAINS = [
    ((40, 40, 40, 40), ((0, 8), (1, 8), (2, 8), (3, 8))),
    ((40, 40, 40, 40), ((0, 8), (1, 8), (2, 16), (3, 4))),
    ((40, 40, 40, 40), ((1, 8), (2, 8), (3, 8))),  # HOOI skip-one chain
    ((64, 48, 32), ((0, 16), (1, 16), (2, 16))),
    ((8, 8, 8), ((0, 32), (1, 32), (2, 32))),  # expanding chain (reconstruct)
    ((100, 100, 100), ((0, 10), (2, 10))),
    ((20, 20, 20, 20, 20), ((0, 4), (1, 4), (2, 4), (3, 4), (4, 4))),
]


def chain_key(shape, sig, layout) -> str:
    dims = "x".join(str(s) for s in shape)
    steps = ",".join(f"{m}:{j}" for m, j in sig)
    return f"{dims}|{steps}|{layout.name}"


def oracle_chain(x: np.ndarray, steps) -> np.ndarray:
    y = x
    for step in steps:
        y = ttm_oracle(y, step.matrix, step.mode)
    return y


def make_steps(shape, sig, rng, dtype="float64"):
    return [
        ChainStep(mode, rng.standard_normal((j, shape[mode])).astype(dtype))
        for mode, j in sig
    ]


# -- equivalence ---------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    shape=st.lists(st.integers(2, 6), min_size=2, max_size=4),
    data=st.data(),
)
def test_fuzz_fused_equals_stepwise_equals_oracle(shape, data):
    """Fused == legacy step-at-a-time == NumPy, everywhere it can differ.

    Random geometry, random subset of modes, random Js, both layouts,
    both float widths, every ordering policy plus a random explicit
    permutation — the chain planner must never change the numbers, only
    the cost of producing them.
    """
    shape = tuple(shape)
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    dtype = data.draw(st.sampled_from(["float64", "float32"]))
    modes = data.draw(
        st.lists(
            st.integers(0, len(shape) - 1),
            min_size=1,
            max_size=len(shape),
            unique=True,
        )
    )
    sig = [(m, data.draw(st.integers(1, 6))) for m in modes]
    order = data.draw(
        st.sampled_from(["auto", "greedy", "optimal", "given", "perm"])
    )
    if order == "perm":
        order = data.draw(st.permutations(range(len(sig))))

    x = DenseTensor(rng.standard_normal(shape).astype(dtype), layout)
    steps = make_steps(shape, sig, rng, dtype)
    want = oracle_chain(x.data, steps)

    fused = ttm_chain(x, steps, order=order)
    stepwise = ttm_chain(x, steps, backend=ttm_inplace, order=order)

    tol = 1e-9 if dtype == "float64" else 1e-4
    scale = max(1.0, float(np.abs(want).max()))
    assert fused.data.dtype == np.dtype(dtype)
    assert stepwise.data.dtype == np.dtype(dtype)
    assert np.allclose(fused.data, want, atol=tol * scale)
    assert np.allclose(stepwise.data, want, atol=tol * scale)


def test_facade_chain_matches_oracle():
    rng = np.random.default_rng(7)
    lib = InTensLi(max_threads=1)
    x = DenseTensor(rng.standard_normal((9, 8, 7, 6)))
    steps = make_steps(x.shape, [(0, 3), (1, 4), (2, 2), (3, 5)], rng)
    got = lib.ttm_chain(x, steps, order="auto")
    assert np.allclose(got.data, oracle_chain(x.data, steps), atol=1e-9)


def test_facade_chain_transpose_matches_projection():
    """transpose=True applies each (I_n x J) matrix transposed (Tucker)."""
    rng = np.random.default_rng(8)
    lib = InTensLi(max_threads=1)
    x = DenseTensor(rng.standard_normal((8, 7, 6)))
    factors = [rng.standard_normal((x.shape[m], 3)) for m in range(3)]
    got = lib.ttm_chain(x, list(enumerate(factors)), transpose=True)
    want = oracle_chain(
        x.data, [ChainStep(m, f.T) for m, f in enumerate(factors)]
    )
    assert np.allclose(got.data, want, atol=1e-9)


# -- the resource contract -----------------------------------------------------


@pytest.mark.parametrize("n_steps", [3, 4, 5])
def test_chain_makes_at_most_two_intermediate_allocations(n_steps):
    """An N-step chain allocates <= 2 scratch buffers, 0 when warm."""
    rng = np.random.default_rng(0)
    shape = (6,) * n_steps
    sig = [(m, 4) for m in range(n_steps)]
    x = DenseTensor(rng.standard_normal(shape))
    steps = make_steps(shape, sig, rng)
    plan = plan_chain(shape, sig, order="auto")
    pool = ScratchPool()

    execute_chain(x, steps, plan, pool=pool)
    assert pool.allocations <= 2
    assert len(plan.scratch_elements) <= 2

    # A warm pool serves every intermediate without a single allocation.
    before = pool.allocations
    execute_chain(x, steps, plan, pool=pool)
    assert pool.allocations == before
    assert pool.reuses >= n_steps - 1


def test_scratch_pool_grows_monotonically_and_releases():
    pool = ScratchPool()
    small = pool.request(0, (4, 4), ROW_MAJOR, "float64")
    assert small.shape == (4, 4)
    assert pool.allocations == 1
    big = pool.request(0, (8, 8), ROW_MAJOR, "float64")
    assert big.shape == (8, 8)
    assert pool.allocations == 2  # had to grow
    again = pool.request(0, (3, 5), ROW_MAJOR, "float64")
    assert again.shape == (3, 5)
    assert pool.allocations == 2 and pool.reuses == 1
    assert pool.release() > 0 and pool.nbytes == 0


def test_scratch_views_are_copy_free_in_both_layouts():
    """Pool views alias the backing buffer (writes land in the buffer)."""
    pool = ScratchPool()
    for layout in (ROW_MAJOR, COL_MAJOR):
        view = pool.request(0, (3, 4, 5), layout, "float64")
        assert view.layout is layout
        assert not view.data.flags["OWNDATA"]


def test_out_receives_the_final_product():
    rng = np.random.default_rng(1)
    shape = (7, 6, 5)
    sig = [(0, 3), (1, 3), (2, 3)]
    x = DenseTensor(rng.standard_normal(shape))
    steps = make_steps(shape, sig, rng)
    out = DenseTensor.empty((3, 3, 3))
    result = ttm_chain(x, steps, out=out)
    assert result is out
    assert np.allclose(out.data, oracle_chain(x.data, steps), atol=1e-9)


def test_out_shape_and_dtype_are_validated():
    rng = np.random.default_rng(2)
    shape = (6, 5)
    x = DenseTensor(rng.standard_normal(shape))
    steps = make_steps(shape, [(0, 2), (1, 2)], rng)
    with pytest.raises(PlanError):
        ttm_chain(x, steps, out=DenseTensor.empty((9, 9)))
    with pytest.raises(DtypeError):
        ttm_chain(x, steps, out=DenseTensor.empty((2, 2), dtype="float32"))


def test_backend_path_rejects_fused_only_arguments():
    rng = np.random.default_rng(3)
    shape = (5, 4)
    x = DenseTensor(rng.standard_normal(shape))
    steps = make_steps(shape, [(0, 2)], rng)
    with pytest.raises(PlanError):
        ttm_chain(x, steps, backend=ttm_inplace,
                  out=DenseTensor.empty((2, 4)))
    with pytest.raises(PlanError):
        ttm_chain(x, steps, backend=ttm_inplace,
                  plan=plan_chain(shape, [(0, 2)]))


# -- dtype fidelity (the regression this PR fixes) -----------------------------


def test_float32_chain_stays_float32_on_both_paths():
    """The fused and legacy paths both preserve single precision.

    The pre-PR coercion materialized every step matrix in float64,
    silently upcasting float32 chains — exactly the upcast-and-copy bug
    the library exists to avoid.
    """
    rng = np.random.default_rng(4)
    shape = (6, 5, 4)
    x = DenseTensor(rng.standard_normal(shape).astype(np.float32))
    steps = make_steps(shape, [(0, 2), (1, 3), (2, 2)], rng, "float32")
    assert ttm_chain(x, steps).data.dtype == np.float32
    assert (
        ttm_chain(x, steps, backend=ttm_inplace).data.dtype == np.float32
    )


def test_mixed_float_widths_raise():
    rng = np.random.default_rng(5)
    shape = (6, 5)
    x = DenseTensor(rng.standard_normal(shape).astype(np.float32))
    steps = [
        ChainStep(0, rng.standard_normal((2, 6)).astype(np.float32)),
        ChainStep(1, rng.standard_normal((2, 5))),  # float64: mismatch
    ]
    with pytest.raises(DtypeError):
        ttm_chain(x, steps)


def test_integer_matrices_are_materialized_in_the_chain_dtype():
    x = DenseTensor(np.ones((4, 3), dtype=np.float32))
    y = ttm_chain(x, [(0, np.ones((2, 4), dtype=np.int64))])
    assert y.data.dtype == np.float32
    assert np.allclose(y.data, 4.0)


# -- ordering and cost models --------------------------------------------------


def test_optimal_order_refuses_oversized_chains():
    shape = (2,) * (MAX_OPTIMAL_STEPS + 1)
    steps = [
        ChainStep(m, np.zeros((2, 2))) for m in range(MAX_OPTIMAL_STEPS + 1)
    ]
    with pytest.raises(ValueError):
        optimal_order(shape, steps)
    # The entry points degrade to greedy instead of refusing.
    rng = np.random.default_rng(6)
    x = DenseTensor(rng.standard_normal(shape))
    live = make_steps(shape, [(m, 2) for m in range(len(shape))], rng)
    y = ttm_chain(x, live, order="auto")
    assert np.allclose(y.data, oracle_chain(x.data, live), atol=1e-9)


def test_auto_order_never_costs_more_than_given():
    rng = np.random.default_rng(9)
    shape = (30, 20, 10, 5)
    sig = [(0, 25), (1, 2), (2, 8), (3, 3)]
    steps = make_steps(shape, sig, rng)
    auto = optimal_order(shape, steps, cost="roofline")
    assert chain_cost(shape, steps, auto) <= chain_cost(shape, steps)
    flops_best = optimal_order(shape, steps)
    assert chain_flops(shape, steps, flops_best) <= chain_flops(shape, steps)


def test_chain_intermediate_bytes_tracks_order():
    shape = (10, 10)
    rng = np.random.default_rng(10)
    steps = make_steps(shape, [(0, 2), (1, 20)], rng)
    shrink_first, _ = chain_intermediate_bytes(shape, steps, (0, 1))
    grow_first, _ = chain_intermediate_bytes(shape, steps, (1, 0))
    assert shrink_first < grow_first


# -- ChainPlan validation ------------------------------------------------------


def test_chain_plan_validates_order_and_shape_chaining():
    plan = plan_chain((6, 5, 4), [(0, 2), (1, 3)])
    with pytest.raises(PlanError):
        ChainPlan(
            shape=plan.shape,
            layout=plan.layout,
            dtype=plan.dtype,
            order=(0, 0),  # not a permutation
            step_plans=plan.step_plans,
        )
    with pytest.raises(PlanError):
        ChainPlan(
            shape=plan.shape,
            layout=plan.layout,
            dtype=plan.dtype,
            order=plan.order,
            step_plans=tuple(reversed(plan.step_plans)),  # broken chaining
        )


def test_chain_plan_describe_and_explain_render():
    plan = plan_chain((12, 10, 8), [(0, 4), (1, 4), (2, 4)], order="auto")
    assert "ChainPlan[" in plan.describe()
    text = explain_chain(plan)
    assert "order:" in text and "scratch:" in text
    assert "per-step plans" in text


def test_facade_chain_plans_are_cached_per_signature():
    lib = InTensLi(max_threads=1)
    before = lib.cached_chain_plans
    a = lib.plan_chain((10, 9, 8), [(0, 2), (1, 2)])
    again = lib.plan_chain((10, 9, 8), [(0, 2), (1, 2)])
    assert a is again
    assert lib.cached_chain_plans == before + 1
    lib.plan_chain((10, 9, 8), [(0, 2), (2, 2)])  # different signature
    assert lib.cached_chain_plans == before + 2


# -- golden chain-plan fixtures ------------------------------------------------


def chain_decision(plan: ChainPlan) -> dict:
    return {
        "order": list(plan.order),
        "out_shape": list(plan.out_shape),
        "scratch_elements": list(plan.scratch_elements),
        "total_flops": plan.total_flops,
        "peak_intermediate_bytes": plan.peak_intermediate_bytes,
        "step_kernels": [p.kernel for p in plan.step_plans],
        "step_degrees": [p.degree for p in plan.step_plans],
    }


def compute_chain_decisions() -> dict[str, dict]:
    """Deterministic: geometry-only planning, no measurement involved."""
    decisions: dict[str, dict] = {}
    for layout in (ROW_MAJOR, COL_MAJOR):
        for shape, sig in GOLDEN_CHAINS:
            plan = plan_chain(shape, sig, layout, order="auto")
            decisions[chain_key(shape, sig, layout)] = chain_decision(plan)
    return decisions


def test_golden_chain_plans_match_fixture(request):
    decisions = compute_chain_decisions()
    if request.config.getoption("--regen-golden"):
        GOLDEN_DIR.mkdir(exist_ok=True)
        CHAIN_GOLDEN.write_text(
            json.dumps(decisions, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {CHAIN_GOLDEN}")
    assert CHAIN_GOLDEN.exists(), (
        f"golden fixture {CHAIN_GOLDEN} is missing; generate it with "
        f"`python -m pytest {__file__} --regen-golden` and commit it"
    )
    golden = json.loads(CHAIN_GOLDEN.read_text())
    diffs: list[str] = []
    for key in sorted(set(golden) | set(decisions)):
        if golden.get(key) != decisions.get(key):
            diffs.append(
                f"{key}: {golden.get(key)!r} -> {decisions.get(key)!r}"
            )
    if diffs:
        detail = "\n  ".join(diffs)
        pytest.fail(
            f"{len(diffs)} chain-plan decision(s) drifted from "
            f"{CHAIN_GOLDEN.name}:\n  {detail}\n"
            "If intentional, regenerate with `python -m pytest "
            "tests/test_chain_plan.py --regen-golden` and commit the diff."
        )


def test_golden_chain_fixture_is_executable():
    """Each pinned chain still plans and runs against the oracle."""
    rng = np.random.default_rng(11)
    shape, sig = GOLDEN_CHAINS[4]  # the expanding (reconstruct) chain
    x = DenseTensor(rng.standard_normal(shape))
    steps = make_steps(shape, sig, rng)
    y = ttm_chain(x, steps, order="auto")
    assert np.allclose(y.data, oracle_chain(x.data, steps), atol=1e-9)
