"""Tests for the code generator: structure and numerical equivalence."""

import numpy as np
import pytest

from repro.core.codegen import clear_cache, compile_plan, generate_source
from repro.core.inttm import default_plan, ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from tests.helpers import TTM_CASES, ttm_oracle


def run_generated(plan, x, u):
    fn = compile_plan(plan)
    y = DenseTensor.empty(plan.out_shape, plan.layout)
    fn(x.data, u, y.data)
    return y


class TestSourceStructure:
    def test_collapsible_plan_emits_batched_matmul(self):
        """Leading loop modes collapse into one rank-3 batched matmul."""
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR)
        src = generate_source(plan)
        assert "x.reshape((9, 8, 7))" in src
        assert "y.reshape((9, 3, 7))" in src
        assert "np.matmul(u, x3, out=y3)" in src
        assert "for " not in src

    def test_backward_collapsible_plan_batches_over_trailing(self):
        plan = default_plan((9, 8, 7), 1, 3, COL_MAJOR, kernel="blas")
        src = generate_source(plan)
        assert "order='F'" in src
        assert "np.matmul(x3, ut, out=y3)" in src

    def test_cross_strategy_rm_last_mode_batches(self):
        """Backward on the last row-major mode: batched over the middle
        (loop) block, with U transposed."""
        plan = default_plan((9, 8, 7), 2, 3, ROW_MAJOR, degree=1,
                            kernel="blas")
        src = generate_source(plan)
        assert "ut = u.T" in src
        assert "np.matmul(x3, ut, out=y3)" in src
        assert ".transpose(1, 0, 2)" in src
        assert "for " not in src

    def test_cross_strategy_cm_first_mode_batches(self):
        """Forward on the first column-major mode: batched with F-order
        reshapes over the middle block."""
        plan = default_plan((9, 8, 7), 0, 3, COL_MAJOR, degree=1,
                            kernel="blas")
        src = generate_source(plan)
        assert "order='F'" in src
        assert "np.matmul(u, x3, out=y3)" in src
        assert "for " not in src

    def test_serial_source_has_literal_loops(self):
        # A blocked-kernel plan cannot collapse; it keeps the loop nest.
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR, kernel="blocked")
        src = generate_source(plan)
        assert "for i0 in range(9):" in src
        assert ".reshape((8, 7))" in src
        assert ".reshape((3, 7))" in src
        assert "def inttm(x, u, y):" in src

    def test_partial_collapse_batches_inner_run(self):
        # Degree 1 of an order-4 tensor: M_L = (0, 2) only partially
        # collapses — mode 2 batches into a strided rank-3 matmul and
        # mode 0 stays a literal outer loop.
        plan = default_plan((9, 8, 7, 6), 1, 3, ROW_MAJOR, kernel="blas",
                            degree=1)
        assert plan.batch_modes == (2,)
        src = generate_source(plan)
        assert "for i0 in range(9):" in src
        assert "_as_strided(" in src
        assert "np.matmul(u, x3, out=y3)" in src

    def test_blas_kernel_inlines_matmul(self):
        # An explicitly unbatched plan keeps the explicit nest with a
        # per-iteration matmul.
        plan = default_plan((9, 8, 7, 6), 1, 3, ROW_MAJOR, kernel="blas",
                            degree=1, batched=False)
        src = generate_source(plan)
        assert "np.matmul(u, x_sub, out=y_sub)" in src

    def test_blocked_kernel_emits_gemm_blocked(self):
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR, kernel="blocked")
        assert "gemm_blocked(" in generate_source(plan)

    def test_threaded_kernel_emits_gemm_threaded(self):
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR, kernel_threads=4)
        src = generate_source(plan)
        assert "gemm_threaded(" in src and "threads=4" in src

    def test_parallel_loops_emit_parfor(self):
        plan = default_plan((9, 8, 7, 6), 2, 3, ROW_MAJOR, loop_threads=4)
        src = generate_source(plan)
        assert "parfor(" in src and "threads=4" in src
        assert "def body(_index):" in src

    def test_backward_strategy_uses_transpose(self):
        # Force the loop form with a blocked kernel (not collapsible).
        plan = default_plan((9, 8, 7), 1, 3, COL_MAJOR, kernel="blocked")
        src = generate_source(plan)
        assert "ut = u.T" in src
        assert "order='F'" in src
        assert "gemm_blocked(x_sub, ut, out=y_sub)" in src

    def test_docstring_carries_plan_description(self):
        plan = default_plan((9, 8, 7), 1, 3, ROW_MAJOR)
        assert plan.describe() in generate_source(plan)

    def test_custom_function_name(self):
        plan = default_plan((4, 4), 0, 2, ROW_MAJOR)
        assert "def my_ttm(" in generate_source(plan, function_name="my_ttm")


class TestCompileCache:
    def test_same_plan_compiles_once(self):
        clear_cache()
        plan = default_plan((5, 5, 5), 0, 2, ROW_MAJOR)
        assert compile_plan(plan) is compile_plan(plan)

    def test_source_attached(self):
        plan = default_plan((5, 5, 5), 0, 2, ROW_MAJOR)
        fn = compile_plan(plan)
        assert "def inttm" in fn.__source__


class TestGeneratedEquivalence:
    @pytest.mark.parametrize("shape,j,mode", TTM_CASES)
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_generated_matches_oracle(self, shape, j, mode, layout):
        rng = np.random.default_rng(hash(("cg", shape, j, mode)) % 2**32)
        x = DenseTensor(rng.standard_normal(shape), layout)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, layout)
        y = run_generated(plan, x, u)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @pytest.mark.parametrize("degree", [0, 1, 2])
    def test_generated_matches_interpreter_all_degrees(self, degree):
        rng = np.random.default_rng(13)
        shape, j, mode = (4, 5, 3, 4), 2, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=degree)
        y_gen = run_generated(plan, x, u)
        y_int = ttm_inplace(x, u, plan=plan)
        assert np.allclose(y_gen.data, y_int.data)

    def test_parallel_generated_matches(self):
        rng = np.random.default_rng(14)
        shape, j, mode = (6, 5, 4, 3), 2, 2
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR, loop_threads=3)
        y = run_generated(plan, x, u)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_parallel_single_loop_mode(self):
        rng = np.random.default_rng(15)
        shape, j, mode = (6, 5, 4), 2, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR, loop_threads=2)
        y = run_generated(plan, x, u)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_generated_is_in_place(self):
        rng = np.random.default_rng(16)
        shape, j, mode = (4, 5, 6), 3, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR)
        fn = compile_plan(plan)
        y = DenseTensor.zeros(plan.out_shape, ROW_MAJOR)
        buffer = y.data
        fn(x.data, u, y.data)
        assert y.data is buffer
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_col_major_backward_threaded_kernel(self):
        rng = np.random.default_rng(17)
        shape, j, mode = (4, 5, 6), 3, 2
        x = DenseTensor(rng.standard_normal(shape), COL_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, COL_MAJOR, kernel_threads=2)
        y = run_generated(plan, x, u)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))
