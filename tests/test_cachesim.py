"""Tests for the two-level cache simulator and TTM traces."""

import math

import pytest

from repro.cachesim import (
    CacheModel,
    Region,
    copy_trace,
    gemm_trace,
    simulate_ttm_traffic,
    ttm_copy_trace,
    ttm_inplace_trace,
)
from repro.cachesim.trace import Mat
from repro.cachesim.traffic import (
    copy_vs_inplace_penalty,
    tensor_storage_words,
)
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError


class TestCacheModel:
    def test_cold_miss_then_hit(self):
        c = CacheModel(64, line_words=8)
        assert not c.access(0)
        assert c.access(1)  # same line
        assert c.counters.hits == 1 and c.counters.misses == 1

    def test_capacity_eviction_lru(self):
        c = CacheModel(16, line_words=8)  # 2 lines, fully associative
        c.access(0)
        c.access(8)
        c.access(0)   # touch line 0: now line 1 is LRU
        c.access(16)  # evicts line 1
        assert c.access(0)       # line 0 still resident
        assert not c.access(8)   # line 1 was evicted

    def test_writeback_counts_dirty_evictions(self):
        c = CacheModel(16, line_words=8)
        c.access(0, write=True)
        c.access(8)
        c.access(16)  # evicts dirty line 0
        assert c.counters.writebacks == 1

    def test_flush_writes_back_dirty(self):
        c = CacheModel(64, line_words=8)
        c.access(0, write=True)
        c.access(8)
        c.flush()
        assert c.counters.writebacks == 1
        c.flush()  # idempotent: lines now clean
        assert c.counters.writebacks == 1

    def test_words_moved_accounting(self):
        c = CacheModel(64, line_words=8)
        c.access(0)
        c.access(64, write=True)
        c.flush()
        # two fills + one write-back, 8 words each
        assert c.counters.words_moved == 3 * 8

    def test_set_associative_mapping(self):
        # 4 lines, 2-way: lines 0 and 2 share set 0; line 1 set 1.
        c = CacheModel(32, line_words=8, associativity=2)
        assert c.n_sets == 2 and c.ways == 2
        c.access(0)    # line 0, set 0
        c.access(16)   # line 2, set 0
        c.access(32)   # line 4, set 0 -> evicts line 0
        assert not c.access(0)

    def test_reset(self):
        c = CacheModel(64, line_words=8)
        c.access(0)
        c.reset()
        assert c.counters.accesses == 0
        assert not c.access(0)  # cold again

    def test_validation(self):
        with pytest.raises(ValueError):
            CacheModel(0)
        with pytest.raises(ValueError):
            CacheModel(10, line_words=8)  # not a multiple
        with pytest.raises(ValueError):
            CacheModel(64, line_words=8, associativity=3)  # 8 lines % 3 != 0

    def test_run_convenience(self):
        c = CacheModel(64, line_words=8)
        counters = c.run([(0, False), (1, True), (64, False)])
        assert counters.accesses == 3
        assert counters.miss_rate == pytest.approx(2 / 3)


class TestRegion:
    def test_addr_row_major(self):
        r = Region(100, (3, 4, 5), ROW_MAJOR)
        assert r.addr((0, 0, 0)) == 100
        assert r.addr((1, 2, 3)) == 100 + 20 + 10 + 3

    def test_addr_col_major(self):
        r = Region(0, (3, 4, 5), COL_MAJOR)
        assert r.addr((1, 2, 3)) == 1 + 2 * 3 + 3 * 12

    def test_end(self):
        assert Region(10, (2, 3)).end == 16

    def test_matrix_view_strides(self):
        r = Region(0, (3, 4, 5), ROW_MAJOR)
        m = r.matrix((0,), (1, 2), {})
        assert (m.rows, m.cols) == (3, 20)
        assert (m.rstride, m.cstride) == (20, 1)
        assert m.addr(1, 3) == 23

    def test_matrix_view_with_fixed(self):
        r = Region(0, (3, 4, 5), ROW_MAJOR)
        m = r.matrix((0,), (2,), {1: 2})
        assert m.base == 10
        assert m.addr(2, 1) == 10 + 40 + 1

    def test_addr_rank_mismatch(self):
        with pytest.raises(ShapeError):
            Region(0, (2, 2)).addr((0,))


class TestGemmTrace:
    def test_access_counts(self):
        a = Mat(0, 2, 3, 3, 1)
        b = Mat(6, 3, 4, 4, 1)
        c = Mat(18, 2, 4, 4, 1)
        events = list(gemm_trace(a, b, c, kc=64))
        # 2 reads per (i,j,p) + 1 write per (i,j) per slab
        assert len(events) == 2 * 2 * 3 * 4 + 2 * 4
        writes = [e for e in events if e[1]]
        assert len(writes) == 8

    def test_k_slabs_touch_c_repeatedly(self):
        a = Mat(0, 1, 4, 4, 1)
        b = Mat(4, 4, 1, 1, 1)
        c = Mat(8, 1, 1, 1, 1)
        events = list(gemm_trace(a, b, c, kc=2))
        writes = [e for e in events if e[1]]
        assert len(writes) == 2  # one per K slab

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            list(gemm_trace(Mat(0, 2, 3, 3, 1), Mat(0, 4, 4, 4, 1),
                            Mat(0, 2, 4, 4, 1)))


class TestCopyTrace:
    def test_identity_copy_counts(self):
        src = Region(0, (2, 3), ROW_MAJOR)
        dst = Region(6, (2, 3), ROW_MAJOR)
        events = list(copy_trace(src, dst))
        assert len(events) == 12  # read + write per element
        # Writes stream through destination addresses in order.
        writes = [addr for addr, w in events if w]
        assert writes == list(range(6, 12))

    def test_permuted_copy_addresses(self):
        src = Region(0, (2, 3), ROW_MAJOR)
        dst = Region(6, (3, 2), ROW_MAJOR)
        events = list(copy_trace(src, dst, perm=(1, 0)))
        pairs = [(events[i][0], events[i + 1][0]) for i in range(0, 12, 2)]
        # dst (j, i) <- src (i, j): dst addr 6 + j*2 + i, src addr i*3 + j.
        for src_addr, dst_addr in pairs:
            j, i = divmod(dst_addr - 6, 2)
            assert src_addr == i * 3 + j

    def test_shape_mismatch(self):
        with pytest.raises(ShapeError):
            list(copy_trace(Region(0, (2, 3)), Region(6, (2, 2)), (1, 0)))


class TestTtmTraces:
    def test_copy_trace_total_accesses(self):
        shape, j, mode = (4, 5, 6), 3, 1
        events = list(ttm_copy_trace(shape, j, mode))
        size = math.prod(shape)
        rest = size // shape[mode]
        gemm_reads = 2 * j * shape[mode] * rest
        gemm_writes = j * rest  # single K slab
        copies = 2 * size + 2 * j * rest  # unfold + fold, read+write each
        assert len(events) == gemm_reads + gemm_writes + copies

    def test_inplace_trace_has_no_transform_accesses(self):
        shape, j, mode = (4, 5, 6), 3, 1
        events = list(ttm_inplace_trace(shape, j, mode))
        size = math.prod(shape)
        rest = size // shape[mode]
        assert len(events) == 2 * j * shape[mode] * rest + j * rest

    def test_inplace_trace_stays_in_bounds(self):
        shape, j, mode = (3, 4, 5), 2, 1
        size = math.prod(shape)
        total = size + j * shape[mode] + size // shape[mode] * j
        for addr, _w in ttm_inplace_trace(shape, j, mode):
            assert 0 <= addr < total

    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_traces_run_for_all_modes_layouts(self, layout, mode):
        cache = CacheModel(256, line_words=8)
        for method in ("copy", "inplace"):
            report = simulate_ttm_traffic(
                (3, 4, 5), 2, mode, cache, method, layout
            )
            assert report.words_moved > 0

    def test_degree_validation(self):
        with pytest.raises(ShapeError):
            list(ttm_inplace_trace((3, 4, 5), 2, 1, degree=3))

    def test_degree_zero_is_fiber_form(self):
        events = list(ttm_inplace_trace((3, 4, 5), 2, 1, degree=0))
        # Same flop-driven access count, just smaller inner kernels.
        full = list(ttm_inplace_trace((3, 4, 5), 2, 1))
        assert len(events) == len(full)


class TestTrafficReports:
    @pytest.fixture()
    def cache(self):
        return CacheModel(1024, line_words=8)

    def test_inplace_beats_copy_on_words_moved(self, cache):
        res = copy_vs_inplace_penalty((12, 12, 12), 4, 1, cache)
        assert res["copy"].words_moved > res["inplace"].words_moved
        assert res["measured_ratio"] > 1.0

    def test_intensity_improves_in_place(self, cache):
        res = copy_vs_inplace_penalty((12, 12, 12), 4, 1, cache)
        assert res["inplace"].intensity > res["copy"].intensity

    def test_flops_identical_between_methods(self, cache):
        res = copy_vs_inplace_penalty((8, 8, 8), 4, 0, cache)
        assert res["copy"].flops == res["inplace"].flops

    def test_bigger_cache_moves_fewer_words(self):
        small = CacheModel(256, line_words=8)
        large = CacheModel(8192, line_words=8)
        r_small = simulate_ttm_traffic((10, 10, 10), 4, 1, small, "inplace")
        r_large = simulate_ttm_traffic((10, 10, 10), 4, 1, large, "inplace")
        assert r_large.words_moved <= r_small.words_moved

    def test_unknown_method_raises(self, cache):
        with pytest.raises(ShapeError):
            simulate_ttm_traffic((4, 4), 2, 0, cache, "magic")

    def test_report_properties(self, cache):
        rep = simulate_ttm_traffic((6, 6, 6), 2, 1, cache, "inplace")
        assert rep.flops == 2 * 2 * 216
        assert 0.0 <= rep.miss_rate <= 1.0


class TestStorageWords:
    def test_copy_storage_includes_buffers(self):
        shape, j, mode = (10, 10, 10), 4, 1
        copy = tensor_storage_words(shape, j, mode, "copy")
        inplace = tensor_storage_words(shape, j, mode, "inplace")
        assert copy == 2 * 1000 + 40 + 2 * 400
        assert inplace == 1000 + 40 + 400
        # Figure 4: transformation accounts for ~50% of total storage.
        assert (copy - inplace) / copy == pytest.approx(0.5, abs=0.1)

    def test_unknown_method(self):
        with pytest.raises(ShapeError):
            tensor_storage_words((4, 4), 2, 0, "magic")
