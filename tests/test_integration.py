"""Cross-module integration tests: the full pipelines, end to end."""

import numpy as np
import pytest

import repro
from repro.analysis import CORE_I7_4770K, XEON_E7_4820
from repro.baselines import ttm_copy, ttm_ctf_like
from repro.core import (
    ExhaustiveTuner,
    InTensLi,
    enumerate_plans,
    generate_source,
    rank_plans,
)
from repro.decomp import cp_als, hooi, ht_svd, tt_svd
from repro.decomp.htucker import ht_error
from repro.decomp.tensor_train import tt_error
from repro.distributed import ProcessGrid, distributed_ttm
from repro.gemm.bench import GemmProfile, default_shape_grid, synthetic_profile
from repro.sparse import SparseTensor, hooi_sparse
from repro.tensor.generate import low_rank_tensor, random_tensor
from tests.helpers import ttm_oracle


class TestFullPipelinePerPlatform:
    """Profile -> thresholds -> plan -> codegen -> execution, per preset."""

    @pytest.mark.parametrize("platform", [CORE_I7_4770K, XEON_E7_4820])
    def test_platform_pipeline(self, platform):
        profile = synthetic_profile(
            default_shape_grid(), platform, threads=(1, 4)
        )
        lib = InTensLi(profile=profile, max_threads=4)
        shape, mode, j = (24, 20, 16, 12), 1, 8
        plan = lib.plan(shape, mode, j)
        source = generate_source(plan)
        assert "def inttm" in source
        x = random_tensor(shape, seed=0)
        u = np.random.default_rng(1).standard_normal((j, shape[mode]))
        y = lib.execute(plan, x, u)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_profile_roundtrip_through_disk(self, tmp_path):
        profile = synthetic_profile(
            default_shape_grid(), CORE_I7_4770K, threads=(1,)
        )
        path = tmp_path / "profile.json"
        profile.save(str(path))
        lib = InTensLi(profile=GemmProfile.load(str(path)))
        plan = lib.plan((32, 32, 32), 0, 8)
        assert plan.degree >= 1


class TestPredictionAgainstMeasurement:
    def test_predicted_ranking_correlates_with_measured(self):
        """The model's best plan should be near the measured best."""
        shape, mode, j = (12, 12, 12, 12, 12), 0, 16
        x = random_tensor(shape, seed=2)
        u = np.random.default_rng(3).standard_normal((j, shape[mode]))
        lib = InTensLi()
        plans = enumerate_plans(shape, mode, j, max_threads=1)
        predicted_best = rank_plans(plans, lib.profile)[0][0]
        tuner = ExhaustiveTuner(min_seconds=0.02, min_repeats=2)
        sweep = tuner.sweep(x, u, mode)
        measured_best_rate = sweep.best_gflops
        predicted_best_measured = sweep.gflops_of(predicted_best)
        assert predicted_best_measured > 0.5 * measured_best_rate


class TestDecompositionStack:
    def test_all_decompositions_compress_the_same_tensor(self):
        x = low_rank_tensor((12, 12, 12, 12), 2, seed=4)
        tucker = hooi(x, 2, max_iterations=3)
        assert tucker.fit > 0.999
        tt = tt_svd(x, max_rank=8)
        assert tt_error(x, tt) < 1e-7
        ht = ht_svd(x, max_rank=8)
        assert ht_error(x, ht) < 1e-7
        cp = cp_als(x, 6, max_iterations=25)
        assert cp.fit > 0.8  # CP of a Tucker-structured tensor: partial fit

    def test_sparse_and_dense_tucker_agree_end_to_end(self):
        dense = low_rank_tensor((9, 8, 7), 2, seed=5)
        sparse = SparseTensor.from_dense(dense)
        dense_result = hooi(dense, 2, max_iterations=2, tolerance=0.0)
        sparse_result = hooi_sparse(sparse, 2, max_iterations=2,
                                    tolerance=0.0)
        assert dense_result.fit == pytest.approx(sparse_result.fit, abs=1e-8)


class TestDistributedUsesInPlaceLocally:
    def test_local_backend_is_pluggable_and_consistent(self):
        shape, mode, j = (12, 12, 12), 1, 4
        x = random_tensor(shape, seed=6)
        u = np.random.default_rng(7).standard_normal((j, shape[mode]))
        grid = ProcessGrid((2, 2, 2))
        y_default, _ = distributed_ttm(x, u, mode, grid)
        y_copy, _ = distributed_ttm(x, u, mode, grid, local_backend=ttm_copy)
        assert np.allclose(y_default.data, y_copy.data)
        assert np.allclose(y_default.data, ttm_oracle(x.data, u, mode))


class TestBaselinesShareSemantics:
    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_all_ttm_entry_points_agree(self, mode):
        shape, j = (10, 11, 12), 5
        x = random_tensor(shape, seed=8)
        u = np.random.default_rng(9).standard_normal((j, shape[mode]))
        expect = ttm_oracle(x.data, u, mode)
        assert np.allclose(repro.ttm(x, u, mode).data, expect)
        assert np.allclose(repro.ttm_inplace(x, u, mode).data, expect)
        assert np.allclose(ttm_copy(x, u, mode).data, expect)
        assert np.allclose(ttm_ctf_like(x, u, mode).data, expect)
