"""Tests for host calibration (bandwidth, peak, host platform)."""

import pytest

from repro.analysis.roofline import RooflinePlatform
from repro.perf.calibrate import (
    host_platform,
    measure_bandwidth,
    measure_peak_gflops,
)


class TestBandwidth:
    def test_positive_and_plausible(self):
        bw = measure_bandwidth(size_words=1_000_000, min_seconds=0.02)
        assert 0.1 < bw < 10_000  # GB/s, sanity window

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_bandwidth(size_words=0)


class TestPeak:
    def test_positive_and_plausible(self):
        rate = measure_peak_gflops(n=256, min_seconds=0.02)
        assert 0.1 < rate < 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_peak_gflops(n=0)


class TestHostPlatform:
    def test_builds_consistent_platform(self):
        platform = host_platform(gemm_n=256, stream_words=1_000_000)
        assert isinstance(platform, RooflinePlatform)
        assert platform.name.startswith("host:")
        assert platform.peak_gflops > 0
        assert platform.bandwidth_gbs > 0
        assert platform.llc_bytes > 0
        assert platform.cores >= 1
        assert platform.threads_with_smt >= platform.cores

    def test_usable_by_synthetic_profile_and_estimator(self):
        from repro.core import InTensLi
        from repro.gemm.bench import default_shape_grid, synthetic_profile

        platform = host_platform(gemm_n=256, stream_words=500_000)
        profile = synthetic_profile(
            default_shape_grid(k_exponents=range(5, 10),
                               n_exponents=range(5, 10)),
            platform,
        )
        lib = InTensLi(profile=profile)
        plan = lib.plan((40, 40, 40), 0, 8)
        assert plan.degree >= 1
