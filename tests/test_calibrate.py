"""Tests for host calibration (bandwidth, peak, host platform)."""

import pytest

import repro.perf.calibrate as calibrate
from repro.analysis.roofline import RooflinePlatform
from repro.perf.calibrate import (
    TRIAD_BYTES_PER_ELEMENT,
    PeakMeasurement,
    host_platform,
    measure_bandwidth,
    measure_peak,
    measure_peak_gflops,
)


class TestBandwidth:
    def test_positive_and_plausible(self):
        bw = measure_bandwidth(size_words=1_000_000, min_seconds=0.02)
        assert 0.1 < bw < 10_000  # GB/s, sanity window

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_bandwidth(size_words=0)

    def test_counts_40_bytes_per_element(self, monkeypatch):
        """Regression: the two-pass NumPy triad moves 40 B/element (one
        16 B multiply pass + one 24 B add pass), not STREAM's fused 24 —
        the old constant underreported bandwidth by ~40%."""
        assert TRIAD_BYTES_PER_ELEMENT == 40
        monkeypatch.setattr(calibrate, "time_callable",
                            lambda *a, **kw: 0.5)
        bw = measure_bandwidth(size_words=1_000_000)
        assert bw == pytest.approx(40 * 1_000_000 / 0.5 / 1e9)


class TestPeak:
    def test_positive_and_plausible(self):
        rate = measure_peak_gflops(n=256, min_seconds=0.02)
        assert 0.1 < rate < 10_000

    def test_validation(self):
        with pytest.raises(ValueError):
            measure_peak_gflops(n=0)

    def test_measures_under_a_pinned_pool(self, monkeypatch):
        """Regression: the GEMM runs inside ``blas_threads(1)`` and the
        pin outcome travels with the rate, because only a truly
        single-thread rate may be scaled by the core count."""
        pins = []

        class SpyPin:
            def __init__(self, n):
                pins.append(n)

            def __enter__(self):
                return True

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(calibrate, "blas_threads", SpyPin)
        result = measure_peak(n=64, min_seconds=0.001)
        assert pins == [1]
        assert isinstance(result, PeakMeasurement)
        assert result.pinned is True
        assert result.gflops > 0

    def test_unpinnable_pool_reports_unpinned(self, monkeypatch):
        class NoopPin:
            def __init__(self, n):
                pass

            def __enter__(self):
                return False  # no pinning mechanism found

            def __exit__(self, *exc):
                return False

        monkeypatch.setattr(calibrate, "blas_threads", NoopPin)
        result = measure_peak(n=64, min_seconds=0.001)
        assert result.pinned is False


class TestHostPlatformScaling:
    def test_pinned_rate_scales_by_cores(self, monkeypatch):
        monkeypatch.setattr(
            calibrate, "measure_peak",
            lambda **kw: PeakMeasurement(gflops=10.0, pinned=True),
        )
        monkeypatch.setattr(
            calibrate, "measure_bandwidth", lambda **kw: 20.0
        )
        from repro.perf.machine import machine_info

        platform = host_platform()
        assert platform.peak_gflops == pytest.approx(
            10.0 * machine_info().physical_cores
        )
        assert platform.bandwidth_gbs == 20.0

    def test_unpinned_rate_taken_as_is(self, monkeypatch):
        """An unpinned measurement already used every core; scaling it
        would double count the backend's parallelism."""
        monkeypatch.setattr(
            calibrate, "measure_peak",
            lambda **kw: PeakMeasurement(gflops=10.0, pinned=False),
        )
        monkeypatch.setattr(
            calibrate, "measure_bandwidth", lambda **kw: 20.0
        )
        platform = host_platform()
        assert platform.peak_gflops == pytest.approx(10.0)


class TestHostPlatform:
    def test_builds_consistent_platform(self):
        platform = host_platform(gemm_n=256, stream_words=1_000_000)
        assert isinstance(platform, RooflinePlatform)
        assert platform.name.startswith("host:")
        assert platform.peak_gflops > 0
        assert platform.bandwidth_gbs > 0
        assert platform.llc_bytes > 0
        assert platform.cores >= 1
        assert platform.threads_with_smt >= platform.cores

    def test_usable_by_synthetic_profile_and_estimator(self):
        from repro.core import InTensLi
        from repro.gemm.bench import default_shape_grid, synthetic_profile

        platform = host_platform(gemm_n=256, stream_words=500_000)
        profile = synthetic_profile(
            default_shape_grid(k_exponents=range(5, 10),
                               n_exponents=range(5, 10)),
            platform,
        )
        lib = InTensLi(profile=profile)
        plan = lib.plan((40, 40, 40), 0, 8)
        assert plan.degree >= 1
