"""Unit tests for the ``repro.obs`` tracing subsystem."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.core import InTensLi
from repro.core.inttm import ttm_inplace
from repro.obs import (
    NULL_TRACER,
    SpanCollector,
    Tracer,
    active_tracer,
    assert_spans_well_nested,
    check_spans_well_nested,
    render_span_tree,
    snapshot,
    spans_to_chrome_trace,
    spans_to_jsonl,
    tracing,
    write_chrome_trace,
    write_jsonl,
)
from repro.perf.profiler import active_hot_counters
from repro.tensor.dense import DenseTensor


# -- tracer mechanics ---------------------------------------------------------


def test_default_tracer_is_null_and_disabled():
    tracer = active_tracer()
    assert tracer is NULL_TRACER
    assert not tracer.enabled
    # span() is a working no-op context manager.
    with tracer.span("anything", whatever=1) as span:
        assert span is None
    assert tracer.current_span() is None
    assert tracer.snapshot() == {"spans": [], "counters": {}}


def test_tracing_installs_and_restores():
    assert active_tracer() is NULL_TRACER
    with tracing() as tracer:
        assert active_tracer() is tracer
        assert tracer.enabled
        # The tracer's counters become the active hot-counter sink.
        assert active_hot_counters() is tracer.counters
        with tracing() as inner:  # blocks nest
            assert active_tracer() is inner
        assert active_tracer() is tracer
    assert active_tracer() is NULL_TRACER
    assert active_hot_counters() is None


def test_tracing_restores_on_exception():
    with pytest.raises(RuntimeError):
        with tracing():
            raise RuntimeError("boom")
    assert active_tracer() is NULL_TRACER


def test_spans_nest_and_carry_attrs():
    tracer = Tracer()
    with tracer.span("outer", a=1) as outer:
        with tracer.span("inner") as inner:
            inner.set(b=2)
            assert tracer.current_span() is inner
        assert tracer.current_span() is outer
    spans = tracer.collector.spans()
    assert [s.name for s in spans] == ["inner", "outer"]  # completion order
    by_name = {s.name: s for s in spans}
    assert by_name["inner"].parent_id == by_name["outer"].span_id
    assert by_name["outer"].parent_id is None
    assert by_name["outer"].attrs == {"a": 1}
    assert by_name["inner"].attrs == {"b": 2}
    assert by_name["outer"].duration >= by_name["inner"].duration >= 0.0
    assert_spans_well_nested(spans)


def test_explicit_parent_attaches_worker_spans():
    tracer = Tracer()
    with tracer.span("dispatch") as parent:
        def worker():
            with tracer.span("work", parent=parent):
                pass

        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    spans = tracer.collector.spans()
    by_name = {s.name: s for s in spans}
    assert by_name["work"].parent_id == by_name["dispatch"].span_id
    assert by_name["work"].thread_id != by_name["dispatch"].thread_id
    assert_spans_well_nested(spans)


def test_collector_is_thread_safe():
    tracer = Tracer()

    def hammer():
        for _ in range(200):
            with tracer.span("s"):
                pass

    threads = [threading.Thread(target=hammer) for _ in range(4)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert len(tracer.collector.spans()) == 800
    assert_spans_well_nested(tracer.collector.spans())


def test_snapshot_folds_counters_and_spans():
    with tracing() as tracer:
        x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
        u = np.random.default_rng(1).standard_normal((3, 5))
        ttm_inplace(x, u, 1)
        snap = snapshot()
    assert snap["spans"], "traced execution produced no spans"
    assert snap["counters"]["dispatches"] >= 1
    assert snap == tracer.snapshot()
    # Outside the block, snapshot() degrades to the counter-only view.
    outside = snapshot()
    assert outside["spans"] == []


# -- validator ---------------------------------------------------------------


def _span_dict(span_id, name, start, end, parent_id=None, thread_id=1):
    return {
        "name": name,
        "span_id": span_id,
        "parent_id": parent_id,
        "thread_id": thread_id,
        "thread_name": "t",
        "start": start,
        "end": end,
        "duration": None if end is None else end - start,
        "attrs": {},
    }


def test_validator_flags_orphans_overlaps_and_unclosed():
    problems = check_spans_well_nested(
        [
            _span_dict(1, "a", 0.0, 10.0),
            _span_dict(2, "orphan", 1.0, 2.0, parent_id=99),
            _span_dict(3, "unclosed", 1.0, None),
            _span_dict(4, "escapee", 5.0, 20.0, parent_id=1),
            _span_dict(5, "overlap", 8.0, 15.0),
        ]
    )
    text = "\n".join(problems)
    assert "orphan" in text
    assert "never closed" in text
    assert "escapes parent" in text
    assert "partially overlaps" in text
    with pytest.raises(AssertionError):
        assert_spans_well_nested([_span_dict(1, "x", 0.0, None)])


def test_validator_accepts_disjoint_siblings():
    assert (
        check_spans_well_nested(
            [
                _span_dict(1, "root", 0.0, 10.0),
                _span_dict(2, "a", 1.0, 2.0, parent_id=1),
                _span_dict(3, "b", 3.0, 4.0, parent_id=1),
            ]
        )
        == []
    )


# -- exporters ---------------------------------------------------------------


def _collect_demo_spans():
    with tracing() as tracer:
        x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
        u = np.random.default_rng(1).standard_normal((3, 5))
        InTensLi(executor="interpreted").ttm(x, u, 1)
    return tracer.collector.spans()


def test_jsonl_export_round_trips(tmp_path):
    spans = _collect_demo_spans()
    text = spans_to_jsonl(spans)
    lines = [json.loads(line) for line in text.splitlines()]
    assert len(lines) == len(spans)
    assert {line["name"] for line in lines} >= {"ttm", "plan", "execute"}
    path = tmp_path / "spans.jsonl"
    write_jsonl(spans, str(path))
    assert path.read_text() == text
    assert spans_to_jsonl([]) == ""


def test_chrome_trace_export_is_loadable(tmp_path):
    spans = _collect_demo_spans()
    payload = spans_to_chrome_trace(spans, pid=42)
    events = payload["traceEvents"]
    assert len(events) == len(spans)
    for event in events:
        assert event["ph"] == "X"
        assert event["pid"] == 42
        assert event["ts"] >= 0 and event["dur"] >= 0
    names = {e["name"] for e in events}
    assert {"ttm", "plan", "gemm-kernel"} <= names
    # plan -> ... -> gemm-kernel ancestry is recorded via args.parent_id.
    by_id = {e["args"]["span_id"]: e for e in events}
    kernel = next(e for e in events if e["name"] == "gemm-kernel")
    seen = set()
    node = kernel
    while "parent_id" in node["args"]:
        node = by_id[node["args"]["parent_id"]]
        seen.add(node["name"])
    assert "ttm" in seen  # kernel chains up to the root call
    path = tmp_path / "trace.json"
    write_chrome_trace(spans, str(path))
    reloaded = json.loads(path.read_text())
    assert reloaded["traceEvents"]


def test_render_span_tree_indents_children():
    spans = _collect_demo_spans()
    text = render_span_tree(spans)
    lines = text.splitlines()
    assert lines[0].startswith("ttm")
    assert any(line.startswith("  plan") for line in lines)
    assert any("gemm-kernel" in line for line in lines)
    assert "mode=1" in text


# -- pipeline wiring ---------------------------------------------------------


def test_traced_facade_emits_the_documented_span_names():
    spans = _collect_demo_spans()
    names = {s.name for s in spans}
    assert {
        "ttm",
        "plan",
        "cache-lookup",
        "partition",
        "execute",
        "parfor-dispatch",
        "gemm-kernel",
    } <= names
    assert_spans_well_nested(spans)


def test_generated_executor_also_traces_kernels():
    """Generated loop nests that call gemm kernels emit spans too.

    (The pure-BLAS collapse compiles to a bare ``np.matmul`` with no
    per-kernel span by design — zero overhead is the point of that
    path — so this test pins a plan whose codegen emits kernel calls.)
    """
    import dataclasses

    from repro.core.inttm import default_plan

    plan = default_plan((4, 5, 6), 1, 3, "C", batched=False)
    plan = dataclasses.replace(plan, kernel="blocked")
    x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
    u = np.random.default_rng(1).standard_normal((3, 5))
    lib = InTensLi(executor="generated")
    with tracing() as tracer:
        y = lib.execute(plan, x, u)
    assert y.shape == plan.out_shape
    spans = tracer.collector.spans()
    names = {s.name for s in spans}
    assert {"execute", "gemm-kernel"} <= names
    kernels = [s for s in spans if s.name == "gemm-kernel"]
    assert len(kernels) == plan.loop_iterations
    assert all(s.attrs["kernel"] == "blocked" for s in kernels)
    assert_spans_well_nested(spans)


def test_generated_blas_collapse_traces_execute_only():
    """The matmul fast path records the execute span (fused kernel)."""
    with tracing() as tracer:
        x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
        u = np.random.default_rng(1).standard_normal((3, 5))
        InTensLi(executor="generated").ttm(x, u, 1)
    spans = tracer.collector.spans()
    names = {s.name for s in spans}
    assert {"ttm", "plan", "execute"} <= names
    execute = next(s for s in spans if s.name == "execute")
    assert execute.attrs["executor"] == "generated"
    assert execute.attrs["flops"] > 0
    assert_spans_well_nested(spans)


def test_tuner_sweep_emits_span():
    from repro.core.tuner import ExhaustiveTuner

    x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
    u = np.random.default_rng(1).standard_normal((3, 5))
    with tracing() as tracer:
        ExhaustiveTuner(min_seconds=0.0, min_repeats=1).sweep(x, u, 1)
    sweeps = [s for s in tracer.collector.spans() if s.name == "tuner-sweep"]
    assert len(sweeps) == 1
    assert sweeps[0].attrs["candidates"] >= 1
    assert "best" in sweeps[0].attrs


def test_autotune_session_refine_emits_span(tmp_path):
    from repro.autotune import AutotuneSession

    session = AutotuneSession(
        path=str(tmp_path / "plans.json"), refine=True, refine_trials=1,
        min_seconds=0.0,
    )
    x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
    u = np.random.default_rng(1).standard_normal((3, 5))
    with tracing() as tracer:
        session.ttm(x, u, 1)
    names = {s.name for s in tracer.collector.spans()}
    assert "autotune-refine" in names
    assert "cache-lookup" in names
    assert_spans_well_nested(tracer.collector.spans())


def test_parallel_loop_spans_attach_to_dispatch():
    import dataclasses

    from repro.core.inttm import default_plan

    shape = (6, 5, 4)
    plan = default_plan(shape, 2, 3, "C", batched=False)
    plan = dataclasses.replace(plan, loop_threads=2)
    x = DenseTensor(np.random.default_rng(0).standard_normal(shape))
    u = np.random.default_rng(1).standard_normal((3, 4))
    with tracing() as tracer:
        ttm_inplace(x, u, plan=plan)
    spans = tracer.collector.spans()
    assert_spans_well_nested(spans)
    by_id = {s.span_id: s for s in spans}
    kernels = [s for s in spans if s.name == "gemm-kernel"]
    assert len(kernels) == plan.loop_iterations
    for kernel in kernels:
        assert kernel.parent_id is not None
        ancestor = by_id[kernel.parent_id]
        assert ancestor.name in ("parfor-dispatch", "execute")


def test_disabled_tracing_adds_no_spans_and_keeps_results_identical():
    x = DenseTensor(np.random.default_rng(0).standard_normal((4, 5, 6)))
    u = np.random.default_rng(1).standard_normal((3, 5))
    collector = SpanCollector()
    baseline = ttm_inplace(x, u, 1)
    with tracing(Tracer(collector=collector)):
        traced = ttm_inplace(x, u, 1)
    after = ttm_inplace(x, u, 1)  # back to the null tracer
    assert np.allclose(baseline.data, traced.data)
    assert np.allclose(baseline.data, after.data)
    count_during = len(collector)
    assert count_during > 0
    assert len(collector) == count_during  # nothing recorded after exit


# -- CLI ---------------------------------------------------------------------


def test_cli_trace_prints_tree_and_exports(tmp_path, capsys):
    from repro.cli import main

    chrome = tmp_path / "trace.json"
    jsonl = tmp_path / "trace.jsonl"
    rc = main(
        [
            "trace",
            "ttm",
            "--shape",
            "6x5x4",
            "--chrome",
            str(chrome),
            "--jsonl",
            str(jsonl),
        ]
    )
    assert rc == 0
    out = capsys.readouterr().out
    assert "ttm" in out and "gemm-kernel" in out
    assert "counters:" in out
    payload = json.loads(chrome.read_text())
    names = {e["name"] for e in payload["traceEvents"]}
    assert {"ttm", "plan", "gemm-kernel"} <= names
    lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert lines


def test_cli_trace_chain_workload(capsys):
    from repro.cli import main

    rc = main(["trace", "chain", "--shape", "5x4x3", "--j", "2"])
    assert rc == 0
    out = capsys.readouterr().out
    # The chain workload runs the fused path: one plan span, one exec
    # span per run, one chain-step span per mode of the chain.
    assert "chain-plan" in out and "chain-exec" in out
    assert out.count("chain-step") == 6  # 3 steps x 2 runs
