"""Targeted tests for small helpers not covered elsewhere."""

import numpy as np

from repro.cachesim import region_layout
from repro.gemm.threaded import _row_panels
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import BenchmarkError, ReproError


class TestRowPanels:
    def test_even_split(self):
        assert _row_panels(8, 2) == [(0, 4), (4, 8)]

    def test_uneven_split_covers_all(self):
        panels = _row_panels(10, 3)
        assert panels[0][0] == 0 and panels[-1][1] == 10
        for (a, b), (c, _d) in zip(panels, panels[1:]):
            assert b == c

    def test_more_parts_than_rows(self):
        panels = _row_panels(3, 10)
        assert len(panels) == 3
        assert all(hi - lo == 1 for lo, hi in panels)

    def test_zero_rows(self):
        assert _row_panels(0, 4) == [(0, 0)]

    def test_single_part(self):
        assert _row_panels(7, 1) == [(0, 7)]


class TestRegionLayout:
    def test_parses_strings(self):
        assert region_layout("C") is ROW_MAJOR
        assert region_layout("F") is COL_MAJOR

    def test_passthrough(self):
        assert region_layout(ROW_MAJOR) is ROW_MAJOR


class TestErrorHierarchyExtras:
    def test_benchmark_error_is_repro_error(self):
        assert issubclass(BenchmarkError, ReproError)
        assert issubclass(BenchmarkError, RuntimeError)


class TestDefaultIntensliSingleton:
    def test_module_level_instance_is_cached(self):
        from repro.core.intensli import default_intensli

        assert default_intensli() is default_intensli()


class TestGemmKwargsPassthrough:
    def test_block_sizes_flow_through_dispatch(self):
        from repro.gemm import BlockSizes, gemm

        rng = np.random.default_rng(0)
        a = rng.standard_normal((7, 9))
        b = rng.standard_normal((9, 5))
        got = gemm(a, b, kernel="blocked",
                   block_sizes=BlockSizes(mc=2, kc=3, nc=2))
        assert np.allclose(got, a @ b)

    def test_threads_flow_through_dispatch(self):
        from repro.gemm import gemm

        rng = np.random.default_rng(1)
        a = rng.standard_normal((6, 4))
        b = rng.standard_normal((4, 5))
        got = gemm(a, b, kernel="threaded", threads=3)
        assert np.allclose(got, a @ b)


class TestArangeTensorEdges:
    def test_zero_start(self):
        from repro.tensor.generate import arange_tensor

        t = arange_tensor((2, 2), start=0)
        assert t.data.min() == 0.0

    def test_single_element(self):
        from repro.tensor.generate import arange_tensor

        t = arange_tensor((1, 1, 1))
        assert t.data.ravel()[0] == 1.0


class TestMachineInfoParsers:
    def test_llc_default_when_sysfs_missing(self, monkeypatch):
        import repro.perf.machine as machine

        monkeypatch.setattr(
            machine.os, "listdir", lambda _p: (_ for _ in ()).throw(OSError)
        )
        assert machine._llc_bytes() == 8 * 1024**2

    def test_memory_bytes_nonnegative(self):
        from repro.perf.machine import _memory_bytes

        assert _memory_bytes() >= 0

    def test_blas_backend_string(self):
        from repro.perf.machine import _blas_backend

        assert isinstance(_blas_backend(), str)


class TestSparseTensorImmutability:
    def test_canonical_indices_are_contiguous(self):
        from repro.sparse import random_sparse

        sp = random_sparse((5, 5), 0.4, seed=0)
        assert sp.indices.flags["C_CONTIGUOUS"]

    def test_norm_of_empty(self):
        from repro.sparse import SparseTensor

        assert SparseTensor.empty((3, 3)).norm() == 0.0
