"""Out-of-core tensor backings: memmap round trips and budget guards.

The contract under test (DESIGN.md §13): a :class:`DenseTensor` may wrap
disk-backed storage without ever pulling the whole array into RAM.
``is_inmem`` records the backing kind and survives wrapping/reopening;
every whole-array materialization (``copy``, ``permute``,
``with_layout``, ``materialize``, the physical ``unfold``) clears the
memory budget first or raises a typed
:class:`~repro.util.errors.ResourceError` with the source untouched.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.resilience.memory import MEM_LIMIT_ENV
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.unfold import unfold
from repro.util.errors import LayoutError, ResourceError, ShapeError
from tests.helpers import ttm_oracle

SHAPE = (6, 7, 8)


def _filled_memmap(tmp_path, layout=ROW_MAJOR, shape=SHAPE, dtype="float64",
                   seed=0):
    t = open_memmap_tensor(
        tmp_path / "x.npy", "w+", shape=shape, dtype=dtype, layout=layout
    )
    rng = np.random.default_rng(seed)
    t.data[...] = rng.standard_normal(shape)
    t.flush()
    return t


# -- round trips ---------------------------------------------------------------


@pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
def test_memmap_round_trip_preserves_data_layout_dtype(tmp_path, layout):
    t = _filled_memmap(tmp_path, layout)
    assert not t.is_inmem
    assert t.layout is layout
    reopened = open_memmap_tensor(tmp_path / "x.npy", "r")
    assert not reopened.is_inmem
    assert reopened.shape == SHAPE
    assert reopened.layout is layout  # inferred from the .npy header
    assert reopened.dtype == np.float64
    np.testing.assert_array_equal(reopened.data, t.data)


def test_memmap_readwrite_flush_persists(tmp_path):
    t = _filled_memmap(tmp_path)
    rw = open_memmap_tensor(tmp_path / "x.npy", "r+")
    rw.data[2, 3, 4] = 42.0
    rw.flush()
    again = open_memmap_tensor(tmp_path / "x.npy", "r")
    assert again.data[2, 3, 4] == 42.0


def test_memmap_readonly_rejects_writes(tmp_path):
    _filled_memmap(tmp_path)
    ro = open_memmap_tensor(tmp_path / "x.npy", "r")
    with pytest.raises((ValueError, OSError)):
        ro.data[0, 0, 0] = 1.0


def test_explicit_layout_request_must_match_stored_order(tmp_path):
    _filled_memmap(tmp_path, ROW_MAJOR)
    # Matching request: fine.  Mismatched request: typed refusal, not a
    # silent out-of-core transpose.
    assert open_memmap_tensor(tmp_path / "x.npy", "r", layout="C").layout \
        is ROW_MAJOR
    with pytest.raises(LayoutError, match="stored ROW_MAJOR"):
        open_memmap_tensor(tmp_path / "x.npy", "r", layout="F")


def test_order1_memmap_satisfies_either_layout_request(tmp_path):
    t = open_memmap_tensor(tmp_path / "v.npy", "w+", shape=(9,))
    t.data[:] = np.arange(9.0)
    t.flush()
    # A vector is contiguous both ways; neither request is a mismatch.
    assert open_memmap_tensor(tmp_path / "v.npy", "r", layout="C").shape == (9,)
    assert open_memmap_tensor(tmp_path / "v.npy", "r", layout="F").shape == (9,)


def test_open_errors_are_typed(tmp_path):
    with pytest.raises(ResourceError):
        open_memmap_tensor(tmp_path / "absent.npy", "r")
    with pytest.raises(ShapeError, match="needs a shape"):
        open_memmap_tensor(tmp_path / "new.npy", "w+")
    (tmp_path / "junk.npy").write_bytes(b"not an npy header")
    with pytest.raises(ResourceError):
        open_memmap_tensor(tmp_path / "junk.npy", "r")


# -- from_memmap / from_buffer -------------------------------------------------


def test_from_memmap_rejects_plain_arrays_and_bad_dtypes(tmp_path):
    with pytest.raises(TypeError, match="from_memmap expects"):
        DenseTensor.from_memmap(np.zeros((3, 3)))
    bad = np.lib.format.open_memmap(
        tmp_path / "ints.npy", mode="w+", dtype=np.int64, shape=(4,)
    )
    with pytest.raises(LayoutError, match="not a supported float dtype"):
        DenseTensor.from_memmap(bad)


def test_from_memmap_infers_and_validates_layout(tmp_path):
    arr = np.lib.format.open_memmap(
        tmp_path / "f.npy", mode="w+", dtype=np.float64, shape=(3, 4),
        fortran_order=True,
    )
    t = DenseTensor.from_memmap(arr)
    assert t.layout is COL_MAJOR and not t.is_inmem
    with pytest.raises(LayoutError, match="not ROW_MAJOR contiguous"):
        DenseTensor.from_memmap(arr, ROW_MAJOR)


def test_from_buffer_round_trip_and_validation():
    values = np.arange(12.0).reshape(3, 4)
    t = DenseTensor.from_buffer(values.tobytes(), (3, 4), ROW_MAJOR)
    np.testing.assert_array_equal(t.data, values)
    # bytes buffers are read-only; writes must fail loudly, not corrupt.
    with pytest.raises(ValueError):
        t.data[0, 0] = 1.0
    with pytest.raises(ShapeError, match="buffer holds"):
        DenseTensor.from_buffer(values.tobytes(), (5, 4), ROW_MAJOR)


# -- is_inmem threading --------------------------------------------------------


def test_is_inmem_flag_true_for_ram_tensors():
    assert DenseTensor(np.zeros((2, 3))).is_inmem
    assert DenseTensor.zeros((2, 3)).is_inmem


def test_views_of_memmap_tensors_stay_out_of_core(tmp_path):
    t = _filled_memmap(tmp_path)
    sub = DenseTensor._wrap(t.data[2:4], t.layout)
    assert not sub.is_inmem
    # A guarded materialization under an ample budget flips the flag.
    assert t.materialize().is_inmem


def test_materialize_is_identity_for_ram_tensors():
    t = DenseTensor(np.ones((2, 2)))
    assert t.materialize() is t


# -- budget guards -------------------------------------------------------------


def test_materializing_ops_refuse_over_budget(tmp_path, monkeypatch):
    t = _filled_memmap(tmp_path)
    monkeypatch.setenv(MEM_LIMIT_ENV, "64")
    for op in (t.copy, t.materialize, lambda: t.with_layout(COL_MAJOR),
               lambda: t.permute((2, 0, 1)), lambda: unfold(t, 1)):
        with pytest.raises(ResourceError, match="materialize"):
            op()
    # The source is untouched and still readable after every refusal.
    assert float(t.data[0, 0, 0]) == float(t.data[0, 0, 0])


def test_materializing_ops_work_under_ample_budget(tmp_path, monkeypatch):
    t = _filled_memmap(tmp_path)
    monkeypatch.setenv(MEM_LIMIT_ENV, str(1 << 30))
    assert t.copy().is_inmem
    assert t.permute((2, 0, 1)).shape == (8, 6, 7)
    assert unfold(t, 1).shape == (7, 6 * 8)


def test_wrapping_memmap_with_copy_is_guarded(tmp_path, monkeypatch):
    t = _filled_memmap(tmp_path, ROW_MAJOR)
    monkeypatch.setenv(MEM_LIMIT_ENV, "64")
    # __init__ would have to copy the mapped array to honor COL_MAJOR;
    # over budget that must refuse, not thrash.
    with pytest.raises(ResourceError):
        DenseTensor(t.data, COL_MAJOR)


def test_ttm_reads_memmap_without_materializing(tmp_path, monkeypatch):
    # Kernels work on views of the mapped storage; only the (small)
    # output is allocated, so a budget far below the tensor size is fine.
    import repro

    t = _filled_memmap(tmp_path, shape=(6, 7, 8))
    u = np.random.default_rng(1).standard_normal((3, 7))
    y = repro.ttm(t, u, 1)
    np.testing.assert_allclose(
        np.asarray(y.data if isinstance(y, DenseTensor) else y),
        ttm_oracle(np.asarray(t.data), u, 1), rtol=1e-10, atol=1e-12,
    )
