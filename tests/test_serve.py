"""Tests for the multi-tenant TTM serving engine (``repro.serve``).

Covers the serving contract end to end: admission control bounds what
the server takes on (server-wide and per-tenant), coalesced fleets
compute exactly what the per-request Algorithm-1 oracle computes (the
Hypothesis property), the shared plan cache enforces per-tenant quotas
with exact per-tenant hit accounting under concurrent readers, and the
degradation ladder sheds load with typed ``OverloadError``\\ s —
deadlines under an injected slow kernel, the serving watchdog, and
memory pressure degrading a fleet to guarded per-request execution.
"""

import asyncio
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autotune import PlanCache, PlanKey, PlanStore
from repro.baselines import ttm_copy
from repro.core.inttm import default_plan
from repro.obs import ROOT, Tracer, tracing
from repro.resilience import FaultInjector, fault_injection
from repro.serve import (
    AdmissionController,
    OverloadError,
    ServeConfig,
    TtmServer,
    execute_fleet,
    fleet_staging_bytes,
    signature_of,
)
from repro.serve.request import TtmRequest
from repro.serve.workload import (
    TraceEntry,
    default_tenants,
    generate_trace,
    load_trace,
    materialize,
    replay,
    save_trace,
)
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout
from repro.util.errors import ShapeError


def run(coro):
    return asyncio.run(coro)


def make_request(shape, mode, j, seed=0, tenant="t", dtype=np.float32,
                 layout=Layout.ROW_MAJOR):
    rng = np.random.default_rng(seed)
    order = "C" if layout is Layout.ROW_MAJOR else "F"
    data = np.asarray(
        rng.standard_normal(shape).astype(dtype), order=order
    )
    u = rng.standard_normal((j, shape[mode])).astype(dtype)
    return TtmRequest(
        tenant=tenant, x=DenseTensor(data, layout), u=u, mode=mode,
        request_id=seed,
    )


async def serving(config=None, **kwargs):
    server = TtmServer(config=config or ServeConfig(**kwargs))
    await server.start()
    return server


# -- admission control ---------------------------------------------------------


class TestAdmission:
    def test_server_wide_cap(self):
        ctl = AdmissionController(max_inflight=2)
        ctl.admit("a")
        ctl.admit("b")
        with pytest.raises(OverloadError) as info:
            ctl.admit("c")
        assert info.value.reason == "admission"
        assert info.value.tenant == "c"
        ctl.release("a")
        ctl.admit("c")  # slot freed; admits again
        assert ctl.inflight == 2
        assert ctl.admitted == 3
        assert ctl.rejected["admission"] == 1

    def test_per_tenant_quota(self):
        ctl = AdmissionController(max_inflight=10, tenant_inflight=2)
        ctl.admit("greedy")
        ctl.admit("greedy")
        with pytest.raises(OverloadError) as info:
            ctl.admit("greedy")
        assert info.value.reason == "tenant-quota"
        assert info.value.tenant == "greedy"
        # Other tenants still clear admission: the quota isolates, it
        # does not shut the door.
        ctl.admit("polite")
        assert ctl.tenant_load("greedy") == 2
        assert ctl.tenant_load("polite") == 1
        assert ctl.rejected["tenant-quota"] == 1

    def test_release_without_admit_is_typed(self):
        ctl = AdmissionController()
        with pytest.raises(OverloadError):
            ctl.release("ghost")

    def test_invalid_limits(self):
        with pytest.raises(ValueError):
            AdmissionController(max_inflight=0)
        with pytest.raises(ValueError):
            AdmissionController(tenant_inflight=0)

    def test_snapshot_shape(self):
        ctl = AdmissionController(max_inflight=4, tenant_inflight=2)
        ctl.admit("a")
        snap = ctl.snapshot()
        assert snap["inflight"] == 1
        assert snap["per_tenant_inflight"] == {"a": 1}
        assert snap["max_inflight"] == 4


# -- coalescing correctness ----------------------------------------------------


class TestFleet:
    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 8), min_size=2, max_size=4).map(tuple),
        data=st.data(),
        batch=st.integers(1, 6),
        layout=st.sampled_from([Layout.ROW_MAJOR, Layout.COL_MAJOR]),
        dtype=st.sampled_from([np.float32, np.float64]),
    )
    def test_fleet_matches_per_request_oracle(
        self, shape, data, batch, layout, dtype
    ):
        """The coalesced batch computes exactly what B oracle calls do."""
        mode = data.draw(st.integers(0, len(shape) - 1))
        j = data.draw(st.integers(1, 6))
        requests = [
            make_request(shape, mode, j, seed=i, layout=layout, dtype=dtype)
            for i in range(batch)
        ]
        results = execute_fleet(signature_of(requests[0]), requests)
        tol = 1e-5 if dtype is np.float32 else 1e-12
        for request, y in zip(requests, results):
            expected = ttm_copy(request.x, request.u, mode)
            assert y.shape == expected.shape
            assert y.layout is request.x.layout
            np.testing.assert_allclose(
                y.data, expected.data, rtol=tol, atol=tol
            )

    def test_signature_mismatch_rejected(self):
        a = make_request((4, 5, 6), 1, 3, seed=0)
        b = make_request((4, 5, 7), 1, 3, seed=1)
        with pytest.raises(ShapeError):
            execute_fleet(signature_of(a), [a, b])

    def test_staging_bytes_price_the_three_buffers(self):
        request = make_request((4, 5, 6), 1, 3)
        sig = signature_of(request)
        per = np.dtype(np.float32).itemsize * (3 * 5 + 5 * 24 + 3 * 24)
        assert fleet_staging_bytes(sig, 7) == 7 * per

    def test_empty_fleet(self):
        request = make_request((4, 5, 6), 1, 3)
        assert execute_fleet(signature_of(request), []) == []


# -- tenant-aware plan cache ---------------------------------------------------


class TestTenantPlanCache:
    def make_cache(self, tmp_path, quota=None):
        return PlanCache(
            store=PlanStore(str(tmp_path / "plans.json")),
            autosave=False,
            tenant_quota=quota,
        )

    def key(self, i=0, shape=(6, 7, 8)):
        return PlanKey.make(shape, 0, 4 + i, Layout.ROW_MAJOR, 1, "float64")

    def plan(self, shape=(6, 7, 8), j=4):
        return default_plan(shape, 0, j, Layout.ROW_MAJOR)

    def test_per_tenant_hit_accounting(self, tmp_path):
        cache = self.make_cache(tmp_path)
        key = self.key()
        assert cache.get(key, tenant="a") is None
        cache.put(key, self.plan(), tenant="a")
        assert cache.get(key, tenant="a") is not None
        assert cache.get(key, tenant="b") is not None
        a, b = cache.tenant_stats("a"), cache.tenant_stats("b")
        assert (a.hits, a.misses) == (1, 1)
        assert (b.hits, b.misses) == (1, 0)
        assert cache.stats.hits == 2
        assert cache.stats.hit_rate == pytest.approx(2 / 3)

    def test_tenant_quota_evicts_oldest_owned_entry(self, tmp_path):
        cache = self.make_cache(tmp_path, quota=2)
        for i in range(3):
            cache.put(self.key(i), self.plan(j=4 + i), tenant="a")
        assert len(cache) == 2
        assert cache.peek(self.key(0)) is None  # oldest evicted
        assert cache.peek(self.key(2)) is not None
        assert cache.tenant_stats("a").evictions == 1
        # Another tenant is untouched by tenant a's quota.
        cache.put(self.key(7), self.plan(j=11), tenant="b")
        assert cache.peek(self.key(7)) is not None

    def test_stats_atomic_under_concurrent_readers(self, tmp_path):
        """N threads hammering one key lose no hit/miss increments."""
        cache = self.make_cache(tmp_path)
        key = self.key()
        cache.put(key, self.plan(), tenant="seed")
        threads, per_thread = 8, 200
        barrier = threading.Barrier(threads)

        def reader(tenant):
            barrier.wait()
            for _ in range(per_thread):
                cache.get(key, tenant=tenant)

        pool = [
            threading.Thread(target=reader, args=(f"t{i % 4}",))
            for i in range(threads)
        ]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert cache.stats.hits == threads * per_thread
        per_tenant = sum(
            cache.tenant_stats(t).hits for t in cache.tenants()
        )
        assert per_tenant == threads * per_thread


# -- the server ----------------------------------------------------------------


class TestServer:
    def test_serves_and_coalesces(self):
        async def scenario():
            server = await serving(max_batch=16, batch_window_s=0.002)
            try:
                results = await asyncio.gather(
                    *(
                        server.submit(
                            *materialize(entry)[:2],
                            entry.mode,
                            tenant=entry.tenant,
                        )
                        for entry in generate_trace(
                            default_tenants(4), 48, seed=3
                        )
                    )
                )
            finally:
                await server.stop()
            return server, results

        server, results = run(scenario())
        assert len(results) == 48
        assert server.stats.completed == 48
        assert server.stats.shed_total == 0
        assert max(r.batch_size for r in results) > 1

    def test_results_match_oracle_through_server(self):
        async def scenario():
            server = await serving(max_batch=8)
            trace = generate_trace(default_tenants(2), 24, seed=5)
            try:
                report = await replay(
                    server, trace, concurrency=8, verify=True
                )
            finally:
                await server.stop()
            return report

        report = run(scenario())
        assert report.completed == 24
        assert report.wrong == 0
        assert report.shed["total"] == 0

    def test_admission_shed_when_saturated(self):
        async def scenario():
            server = await serving(
                max_inflight=2, max_batch=4, batch_window_s=0.01
            )
            request = make_request((8, 8, 8), 1, 4)
            try:
                outcomes = await asyncio.gather(
                    *(
                        server.submit(request.x, request.u, 1, tenant="t")
                        for _ in range(16)
                    ),
                    return_exceptions=True,
                )
            finally:
                await server.stop()
            return server, outcomes

        server, outcomes = run(scenario())
        shed = [o for o in outcomes if isinstance(o, OverloadError)]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert shed and served
        assert all(o.reason == "admission" for o in shed)
        assert server.stats.shed_admission == len(shed)

    def test_tenant_quota_isolates_tenants(self):
        async def scenario():
            server = await serving(
                max_inflight=64, tenant_inflight=1, batch_window_s=0.01
            )
            request = make_request((8, 8, 8), 1, 4)
            try:
                greedy = asyncio.gather(
                    *(
                        server.submit(request.x, request.u, 1, tenant="greedy")
                        for _ in range(8)
                    ),
                    return_exceptions=True,
                )
                polite = server.submit(
                    request.x, request.u, 1, tenant="polite"
                )
                greedy_out, polite_out = await asyncio.gather(
                    greedy, polite
                )
            finally:
                await server.stop()
            return greedy_out, polite_out

        greedy_out, polite_out = run(scenario())
        quota_shed = [
            o
            for o in greedy_out
            if isinstance(o, OverloadError) and o.reason == "tenant-quota"
        ]
        assert quota_shed, "greedy tenant was never limited"
        assert polite_out.y is not None  # other tenant unaffected

    def test_deadline_shed_under_slow_kernel(self):
        """An injected slow kernel backs the pool up; late work sheds."""
        faults = FaultInjector().arm(
            "kernel-raise", delay=0.05, times=10_000
        )

        async def scenario():
            server = await serving(
                workers=1,
                max_batch=2,
                batch_window_s=0.0,
                default_deadline_s=0.08,
            )
            request = make_request((8, 8, 8), 1, 4)
            try:
                outcomes = await asyncio.gather(
                    *(
                        server.submit(request.x, request.u, 1, tenant="t")
                        for _ in range(12)
                    ),
                    return_exceptions=True,
                )
            finally:
                await server.stop()
            return server, outcomes

        with fault_injection(faults):
            server, outcomes = run(scenario())
        shed = [
            o
            for o in outcomes
            if isinstance(o, OverloadError) and o.reason == "deadline"
        ]
        served = [o for o in outcomes if not isinstance(o, BaseException)]
        assert shed, "no deadline sheds despite a backed-up pool"
        assert served, "everything shed; deadline budget unrealistic"
        assert server.stats.shed_deadline == len(shed)
        assert faults.count("kernel-raise") > 0

    def test_watchdog_sheds_a_stuck_batch(self):
        faults = FaultInjector().arm(
            "kernel-raise", delay=0.5, times=10_000
        )

        async def scenario():
            server = await serving(
                workers=1, max_batch=4, watchdog_s=0.05
            )
            request = make_request((8, 8, 8), 1, 4)
            try:
                outcomes = await asyncio.gather(
                    *(
                        server.submit(request.x, request.u, 1, tenant="t")
                        for _ in range(3)
                    ),
                    return_exceptions=True,
                )
            finally:
                await server.stop()
            return server, outcomes

        with fault_injection(faults):
            server, outcomes = run(scenario())
        assert all(
            isinstance(o, OverloadError) and o.reason == "watchdog"
            for o in outcomes
        )
        assert server.stats.shed_watchdog == len(outcomes)

    def test_memory_pressure_degrades_to_per_request(self, monkeypatch):
        """A byte budget too small for the fleet's staging buffers (but
        enough for one request's working set) degrades the batch to
        guarded per-request execution; every result still arrives and
        still matches the oracle."""
        monkeypatch.setenv("REPRO_MEM_LIMIT", "4096")

        async def scenario():
            server = await serving(max_batch=8, batch_window_s=0.01)
            requests = [
                make_request((6, 7, 8), 1, 4, seed=i) for i in range(6)
            ]
            try:
                results = await asyncio.gather(
                    *(
                        server.submit(r.x, r.u, 1, tenant="t")
                        for r in requests
                    )
                )
            finally:
                await server.stop()
            return server, requests, results

        server, requests, results = run(scenario())
        assert server.stats.batched_requests == 0
        assert server.stats.batch_fallbacks > 0
        for request, result in zip(requests, results):
            expected = ttm_copy(request.x, request.u, 1)
            np.testing.assert_allclose(
                result.y.data, expected.data, rtol=1e-4, atol=1e-4
            )

    def test_submit_validates_operands(self):
        async def scenario():
            server = await serving()
            request = make_request((6, 7, 8), 1, 4)
            try:
                with pytest.raises(ShapeError):
                    await server.submit(
                        request.x, request.u[:, :-1], 1, tenant="t"
                    )
                with pytest.raises(ShapeError):
                    await server.submit(request.x, request.u, 9, tenant="t")
            finally:
                await server.stop()

        run(scenario())

    def test_submit_after_stop_is_typed(self):
        async def scenario():
            server = await serving()
            await server.stop()
            request = make_request((6, 7, 8), 1, 4)
            with pytest.raises(OverloadError) as info:
                await server.submit(request.x, request.u, 1, tenant="t")
            return info.value

        assert run(scenario()).reason == "lifecycle"

    def test_tenant_hit_rates_are_exact(self):
        """Tenant b's first request hits the plan tenant a published."""

        async def scenario():
            server = await serving(max_batch=4, batch_window_s=0.0)
            request = make_request((8, 8, 8), 1, 4)
            try:
                await server.submit(request.x, request.u, 1, tenant="a")
                await server.submit(request.x, request.u, 1, tenant="a")
                await server.submit(request.x, request.u, 1, tenant="b")
            finally:
                await server.stop()
            return server

        server = run(scenario())
        a = server.plan_cache.tenant_stats("a")
        b = server.plan_cache.tenant_stats("b")
        assert (a.hits, a.misses) == (1, 1)
        assert (b.hits, b.misses) == (1, 0)

    def test_serve_batch_spans_are_rooted(self):
        """Worker-thread batches trace as ROOT-parented span trees."""
        tracer = Tracer()

        async def scenario():
            server = await serving(max_batch=8, batch_window_s=0.005)
            request = make_request((8, 8, 8), 1, 4)
            try:
                await asyncio.gather(
                    *(
                        server.submit(request.x, request.u, 1, tenant="t")
                        for _ in range(4)
                    )
                )
            finally:
                await server.stop()

        with tracing(tracer):
            run(scenario())
        spans = tracer.collector.spans()
        batches = [s for s in spans if s.name == "serve-batch"]
        leaves = [s for s in spans if s.name == "request"]
        assert batches and leaves
        assert all(s.parent_id is None for s in batches)
        batch_ids = {s.span_id for s in batches}
        assert all(s.parent_id in batch_ids for s in leaves)


# -- ROOT sentinel -------------------------------------------------------------


def test_root_sentinel_forces_root_span():
    tracer = Tracer()
    with tracing(tracer):
        with tracer.span("outer"):
            with tracer.span("forced-root", parent=ROOT):
                with tracer.span("child"):
                    pass
    by_name = {s.name: s for s in tracer.collector.spans()}
    assert by_name["forced-root"].parent_id is None
    assert by_name["child"].parent_id == by_name["forced-root"].span_id


# -- workload harness ----------------------------------------------------------


class TestWorkload:
    def test_trace_is_deterministic(self):
        a = generate_trace(default_tenants(4), 64, seed=9)
        b = generate_trace(default_tenants(4), 64, seed=9)
        assert a == b
        c = generate_trace(default_tenants(4), 64, seed=10)
        assert a != c

    def test_trace_roundtrips_through_json(self, tmp_path):
        trace = generate_trace(default_tenants(3), 32, seed=1)
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        assert load_trace(path) == trace

    def test_stream_pattern_respects_weights(self):
        tenants = default_tenants(4)
        trace = generate_trace(
            tenants, 200, seed=0, pattern="stream"
        )
        counts = {t.name: 0 for t in tenants}
        for entry in trace:
            counts[entry.tenant] += 1
        total_weight = sum(t.weight for t in tenants)
        for t in tenants:
            expected = 200 * t.weight / total_weight
            assert abs(counts[t.name] - expected) <= 2
        # Evenly spaced, monotonically increasing arrivals.
        gaps = [
            b.issue_s - a.issue_s for a, b in zip(trace, trace[1:])
        ]
        assert all(abs(g - gaps[0]) < 1e-9 for g in gaps)

    def test_materialize_is_reproducible(self):
        entry = TraceEntry(
            index=0, tenant="t", shape=(4, 5, 6), mode=1, j=3,
            layout="row", dtype="float32", issue_s=0.0, seed=42,
        )
        x1, u1 = materialize(entry)
        x2, u2 = materialize(entry)
        np.testing.assert_array_equal(x1.data, x2.data)
        np.testing.assert_array_equal(u1, u2)

    def test_trace_rejects_bad_inputs(self):
        with pytest.raises(ShapeError):
            generate_trace(default_tenants(2), 0)
        with pytest.raises(ShapeError):
            generate_trace(default_tenants(2), 4, pattern="bursty")
        with pytest.raises(ShapeError):
            default_tenants(0)

    def test_report_invariants_at_nominal_load(self):
        async def scenario():
            server = await serving(max_batch=16)
            trace = generate_trace(default_tenants(4), 96, seed=11)
            try:
                return await replay(server, trace, concurrency=32)
            finally:
                await server.stop()

        report = run(scenario())
        assert report.requests == 96
        assert report.completed == 96
        assert report.shed["total"] == 0
        assert report.shed_rate == 0.0
        assert report.sustained_gflops > 0
        assert set(report.per_tenant) == {
            f"tenant-{i}" for i in range(4)
        }
        assert report.latencies_ms["p50"] <= report.latencies_ms["p99"]
        payload = report.to_dict()
        assert payload["batching"]["batches"] > 0
        assert 0.0 <= payload["cache"]["hit_rate"] <= 1.0
