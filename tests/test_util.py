"""Tests for repro.util helpers."""

import numpy as np
import pytest

from repro.util import (
    check_axis,
    check_mode,
    check_positive_int,
    check_probability,
    default_rng,
    format_bytes,
    format_gflops,
    format_shape,
    format_table,
    normalized_order,
)
from repro.util.errors import (
    LayoutError,
    PlanError,
    ReproError,
    ShapeError,
    StrideError,
)


class TestErrors:
    @pytest.mark.parametrize(
        "exc", [ShapeError, StrideError, LayoutError, PlanError]
    )
    def test_hierarchy(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, ValueError)


class TestValidation:
    def test_check_positive_int_accepts(self):
        assert check_positive_int(3, "x") == 3

    def test_check_positive_int_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0, "x")

    def test_check_positive_int_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_check_positive_int_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(3.0, "x")

    def test_check_mode(self):
        assert check_mode(2, 3) == 2
        with pytest.raises(ShapeError):
            check_mode(3, 3)
        with pytest.raises(TypeError):
            check_mode("1", 3)

    def test_check_axis_negative(self):
        assert check_axis(-1, 3) == 2
        with pytest.raises(ShapeError):
            check_axis(3, 3)

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(ValueError):
            check_probability(1.5, "p")

    def test_normalized_order(self):
        assert normalized_order([2, 0, 1], 3) == (2, 0, 1)
        with pytest.raises(ShapeError):
            normalized_order([0, 0, 1], 3)


class TestRng:
    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert default_rng(g) is g

    def test_seed_determinism(self):
        assert default_rng(5).random() == default_rng(5).random()

    def test_none_gives_generator(self):
        assert isinstance(default_rng(None), np.random.Generator)


class TestFormatting:
    def test_format_bytes_units(self):
        assert format_bytes(512) == "512.00 B"
        assert format_bytes(2048) == "2.00 KiB"
        assert format_bytes(5 * 1024**2) == "5.00 MiB"
        assert format_bytes(3 * 1024**3) == "3.00 GiB"

    def test_format_gflops(self):
        assert format_gflops(12.345) == "12.35 GFLOP/s"

    def test_format_shape(self):
        assert format_shape((3, 4, 5)) == "3 x 4 x 5"

    def test_format_table_alignment(self):
        out = format_table(["a", "long"], [[1, 2], [333, 4]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")
        assert all(len(line) == len(lines[0]) for line in lines[1:])

    def test_format_table_row_length_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a"], [[1, 2]])
