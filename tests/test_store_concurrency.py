"""Concurrent-writer safety of the autotune plan store.

The store's atomicity contract: because every save goes through
``tempfile.mkstemp`` + ``os.replace``, a reader racing any number of
writers sees either the old file or the new file — never a truncated or
interleaved one, and never a file without the schema envelope.  These
tests hammer one store path from several *processes* (the real
deployment hazard: many workers warming one cache) while a reader loads
continuously, and assert nobody ever observes corruption.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys

import repro
from repro.autotune.store import PlanStore
from repro.core.serialize import SCHEMA_VERSION

_SRC_DIR = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))

#: Run in a child process: save/load the shared store in a tight loop.
#: Exits non-zero if any load ever raises (i.e. observes a torn file).
_WRITER_SCRIPT = """
import sys
from repro.autotune.store import PlanStore
from repro.core.inttm import default_plan
from repro.core.serialize import plan_to_dict

path, wid, iterations = sys.argv[1], int(sys.argv[2]), int(sys.argv[3])
store = PlanStore(path)
plan = plan_to_dict(default_plan((4, 5, 6), 1, 3, "C"))
for i in range(iterations):
    entries = store.load()  # must never raise: replace() is atomic
    entries[f"w{wid}-{i % 8}"] = {"plan": plan, "source": "estimator"}
    store.save(entries)
"""


def _spawn_writer(path: str, wid: int, iterations: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-c", _WRITER_SCRIPT, path, str(wid), str(iterations)],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
    )


def test_concurrent_writers_never_corrupt_the_store(tmp_path):
    """N processes warming one cache file leave it loadable throughout."""
    path = str(tmp_path / "plans.json")
    n_writers, iterations = 4, 25
    writers = [_spawn_writer(path, wid, iterations) for wid in range(n_writers)]

    # Read concurrently with the writers: every observed state must be
    # either absent or a fully valid store (typed errors mean a torn
    # write escaped the mkstemp + os.replace path).
    reader = PlanStore(path)
    reads = 0
    while any(w.poll() is None for w in writers):
        entries = reader.load()  # raises StoreCorruptError on any tear
        for key, entry in entries.items():
            assert "plan" in entry, f"entry {key} lost its plan"
        reads += 1

    for writer in writers:
        _, stderr = writer.communicate(timeout=60)
        assert writer.returncode == 0, (
            f"writer crashed (observed corruption?):\n{stderr.decode()}"
        )
    assert reads > 0

    # Final state: schema envelope intact, last-writer-wins entries only
    # (concurrent saves may drop each other's keys — that is the
    # documented semantics — but the file itself is always whole).
    with open(path) as fh:
        payload = json.load(fh)
    assert payload["schema"] == SCHEMA_VERSION
    assert "fingerprint" in payload
    assert isinstance(payload["entries"], dict)
    assert payload["entries"], "every writer's work vanished"
    final = reader.load()
    assert set(final) == set(payload["entries"])


def test_concurrent_writers_leave_no_temp_droppings(tmp_path):
    """Temp files from interrupted saves do not accumulate after a run."""
    path = str(tmp_path / "plans.json")
    writers = [_spawn_writer(path, wid, 10) for wid in range(3)]
    for writer in writers:
        writer.communicate(timeout=60)
        assert writer.returncode == 0
    leftovers = [
        name
        for name in os.listdir(tmp_path)
        if name.startswith(".plans-") and name.endswith(".tmp")
    ]
    assert leftovers == []
