"""Unit + property tests for the GEMM substrate kernels."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gemm import (
    BlockSizes,
    blas_legal,
    gemm,
    gemm_blas,
    gemm_blocked,
    gemm_reference,
    gemm_threaded,
    kernel_names,
    unit_stride_dims,
)
from repro.util.errors import ShapeError, StrideError


def _case(m, k, n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((m, k)), rng.standard_normal((k, n))


class TestStridePredicates:
    def test_contiguous_is_legal(self):
        a = np.zeros((3, 4))
        assert blas_legal(a)
        assert unit_stride_dims(a) == (False, True)

    def test_fortran_is_legal(self):
        a = np.zeros((3, 4), order="F")
        assert blas_legal(a)
        assert unit_stride_dims(a) == (True, False)

    def test_lda_slice_is_legal(self):
        a = np.zeros((8, 8))[:, :3]
        assert blas_legal(a)

    def test_general_stride_is_illegal(self):
        a = np.zeros((12, 12))[::2, ::3]
        assert not blas_legal(a)

    def test_negative_stride_is_illegal(self):
        a = np.zeros((4, 4))[::-1]
        assert not blas_legal(a)

    def test_degenerate_dims_are_vacuously_unit(self):
        a = np.zeros((1, 5))[:, ::2]
        assert blas_legal(a)

    def test_non_2d_is_illegal(self):
        assert not blas_legal(np.zeros(4))

    def test_unit_stride_dims_requires_2d(self):
        with pytest.raises(ShapeError):
            unit_stride_dims(np.zeros(3))


class TestReference:
    def test_matches_numpy(self):
        a, b = _case(4, 5, 6)
        assert np.allclose(gemm_reference(a, b), a @ b)

    def test_accumulate(self):
        a, b = _case(3, 3, 3)
        out = np.ones((3, 3))
        gemm_reference(a, b, out=out, accumulate=True)
        assert np.allclose(out, 1.0 + a @ b)

    def test_overwrite(self):
        a, b = _case(3, 3, 3)
        out = np.full((3, 3), 9.0)
        gemm_reference(a, b, out=out, accumulate=False)
        assert np.allclose(out, a @ b)

    def test_shape_validation(self):
        with pytest.raises(ShapeError):
            gemm_reference(np.zeros((2, 3)), np.zeros((4, 5)))
        with pytest.raises(ShapeError):
            gemm_reference(np.zeros(3), np.zeros((3, 2)))
        with pytest.raises(ShapeError):
            gemm_reference(
                np.zeros((2, 3)), np.zeros((3, 2)), out=np.zeros((3, 3))
            )


class TestBlasKernel:
    def test_matches_numpy(self):
        a, b = _case(7, 9, 11)
        assert np.allclose(gemm_blas(a, b), a @ b)

    def test_in_place_out(self):
        a, b = _case(5, 6, 7)
        out = np.empty((5, 7))
        result = gemm_blas(a, b, out=out)
        assert result is out
        assert np.allclose(out, a @ b)

    def test_in_place_strided_out(self):
        a, b = _case(5, 6, 7)
        big = np.zeros((15, 7))
        out = big[::3, :]  # row-strided but BLAS-legal (unit column stride)
        gemm_blas(a, b, out=out)
        assert np.allclose(out, a @ b)

    def test_accumulate(self):
        a, b = _case(4, 4, 4)
        out = (a @ b).copy()
        gemm_blas(a, b, out=out, accumulate=True)
        assert np.allclose(out, 2 * (a @ b))

    def test_accumulate_without_out_raises(self):
        a, b = _case(2, 2, 2)
        with pytest.raises(ShapeError):
            gemm_blas(a, b, accumulate=True)

    def test_rejects_general_stride_operand(self):
        a = np.zeros((12, 12))[::2, ::3]
        with pytest.raises(StrideError):
            gemm_blas(a, np.zeros((4, 2)))

    def test_rejects_general_stride_out(self):
        a, b = _case(4, 4, 4)
        out = np.zeros((8, 8))[::2, ::2]
        with pytest.raises(StrideError):
            gemm_blas(a, b, out=out)

    def test_inner_dim_mismatch(self):
        with pytest.raises(ShapeError):
            gemm_blas(np.zeros((2, 3)), np.zeros((4, 5)))

    def test_out_shape_mismatch(self):
        a, b = _case(2, 3, 4)
        with pytest.raises(ShapeError):
            gemm_blas(a, b, out=np.zeros((2, 5)))


class TestBlockedKernel:
    def test_matches_numpy_large(self):
        a, b = _case(70, 90, 110)
        assert np.allclose(gemm_blocked(a, b), a @ b)

    def test_accepts_general_strides_everywhere(self):
        rng = np.random.default_rng(1)
        abase = rng.standard_normal((40, 60))
        bbase = rng.standard_normal((60, 80))
        a = abase[::2, ::3]
        b = bbase[::3, ::4]
        cbase = np.zeros((40, 40))
        out = cbase[::2, ::2]
        gemm_blocked(a, b, out=out)
        assert np.allclose(out, np.asarray(a) @ np.asarray(b))

    def test_blocking_boundaries(self):
        # Sizes straddling the block boundaries in every dimension.
        blocks = BlockSizes(mc=4, kc=3, nc=5)
        a, b = _case(9, 7, 11, seed=2)
        assert np.allclose(
            gemm_blocked(a, b, block_sizes=blocks), a @ b
        )

    def test_accumulate(self):
        a, b = _case(6, 6, 6, seed=3)
        out = np.ones((6, 6))
        gemm_blocked(a, b, out=out, accumulate=True,
                     block_sizes=BlockSizes(mc=2, kc=2, nc=2))
        assert np.allclose(out, 1.0 + a @ b)

    def test_overwrite_clears_previous(self):
        a, b = _case(5, 4, 3, seed=4)
        out = np.full((5, 3), 123.0)
        gemm_blocked(a, b, out=out, block_sizes=BlockSizes(mc=2, kc=2, nc=2))
        assert np.allclose(out, a @ b)

    def test_k_zero_zeroes_output(self):
        out = np.ones((3, 4))
        gemm_blocked(np.zeros((3, 0)), np.zeros((0, 4)), out=out)
        assert np.all(out == 0.0)

    def test_k_zero_accumulate_keeps_output(self):
        out = np.ones((3, 4))
        gemm_blocked(np.zeros((3, 0)), np.zeros((0, 4)), out=out,
                     accumulate=True)
        assert np.all(out == 1.0)

    def test_invalid_blocks_raise(self):
        with pytest.raises(ShapeError):
            BlockSizes(mc=0)

    def test_packed_bytes(self):
        assert BlockSizes(mc=2, kc=3, nc=4).packed_bytes == 8 * (6 + 12)

    @settings(max_examples=40, deadline=None)
    @given(
        m=st.integers(1, 12),
        k=st.integers(0, 12),
        n=st.integers(1, 12),
        mc=st.integers(1, 5),
        kc=st.integers(1, 5),
        nc=st.integers(1, 5),
        seed=st.integers(0, 10),
    )
    def test_property_any_blocking_matches(self, m, k, n, mc, kc, nc, seed):
        rng = np.random.default_rng(seed)
        a = rng.standard_normal((m, k))
        b = rng.standard_normal((k, n))
        got = gemm_blocked(a, b, block_sizes=BlockSizes(mc=mc, kc=kc, nc=nc))
        assert np.allclose(got, a @ b)


class TestThreadedKernel:
    @pytest.mark.parametrize("threads", [1, 2, 3, 8])
    def test_matches_numpy(self, threads):
        a, b = _case(17, 13, 19, seed=5)
        assert np.allclose(gemm_threaded(a, b, threads=threads), a @ b)

    def test_threads_exceeding_rows(self):
        a, b = _case(2, 4, 5, seed=6)
        assert np.allclose(gemm_threaded(a, b, threads=16), a @ b)

    def test_accumulate_into_out(self):
        a, b = _case(8, 4, 6, seed=7)
        out = np.ones((8, 6))
        gemm_threaded(a, b, out=out, accumulate=True, threads=3)
        assert np.allclose(out, 1.0 + a @ b)

    def test_accumulate_without_out_raises(self):
        a, b = _case(2, 2, 2)
        with pytest.raises(ShapeError):
            gemm_threaded(a, b, accumulate=True)

    def test_invalid_threads(self):
        a, b = _case(2, 2, 2)
        with pytest.raises(ValueError):
            gemm_threaded(a, b, threads=0)

    def test_strided_operands_route_through_auto(self):
        rng = np.random.default_rng(8)
        a = rng.standard_normal((24, 24))[::2, ::3]
        b = rng.standard_normal((8, 10))
        assert np.allclose(
            gemm_threaded(a, b, threads=2), np.asarray(a) @ b
        )


class TestDispatch:
    def test_kernel_names(self):
        assert set(kernel_names()) == {
            "auto", "blas", "blocked", "reference", "threaded"
        }

    def test_auto_uses_blas_for_legal(self):
        a, b = _case(4, 5, 6, seed=9)
        assert np.allclose(gemm(a, b, kernel="auto"), a @ b)

    def test_auto_falls_back_for_general_stride(self):
        rng = np.random.default_rng(10)
        a = rng.standard_normal((12, 12))[::2, ::3]
        b = rng.standard_normal((4, 5))
        assert np.allclose(gemm(a, b), np.asarray(a) @ b)

    def test_auto_falls_back_for_strided_out(self):
        a, b = _case(4, 5, 6, seed=11)
        out = np.zeros((8, 12))[::2, ::2]
        gemm(a, b, out=out)
        assert np.allclose(out, a @ b)

    def test_unknown_kernel_raises(self):
        a, b = _case(2, 2, 2)
        with pytest.raises(StrideError):
            gemm(a, b, kernel="magic")

    @pytest.mark.parametrize("kernel", ["blas", "blocked", "reference"])
    def test_named_kernels_agree(self, kernel):
        a, b = _case(6, 7, 8, seed=12)
        assert np.allclose(gemm(a, b, kernel=kernel), a @ b)
