"""The resilience layer: fallback chains, supervision, guards, injection.

Every degradation path in ``repro.resilience`` (DESIGN.md §10) is
exercised here through the deterministic fault-injection harness: the
planned kernel dies and the chain degrades; the worker pool dies and is
replaced (or execution goes serial); a worker wedges and the watchdog
fires; the plan-store read flakes and is retried; memory pressure turns
into a typed error or a lower-degree replan.  The invariant under test
throughout: a fault yields either an oracle-correct (degraded) result or
a typed :class:`~repro.util.errors.ReproError` subclass — never a hang,
a bare ``RuntimeError``, or a partially written output.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.autotune.store import PlanStore
from repro.core.inttm import default_plan, ttm_inplace
from repro.core.intensli import InTensLi
from repro.core.serialize import plan_to_dict
from repro.obs.tracer import tracing
from repro.parallel import parfor
from repro.parallel.parfor import (
    PARFOR_TIMEOUT_ENV,
    default_timeout,
    get_pool,
    shutdown_pools,
)
from repro.perf.profiler import HotCounters, track_hot_path
from repro.resilience import (
    FALLBACK_CHAIN,
    FaultInjector,
    InjectedFault,
    KernelChain,
    MEM_LIMIT_ENV,
    active_faults,
    available_bytes,
    build_gemm_tiers,
    fallback_tiers,
    fault_injection,
    guard_memory,
    pinned_budget,
    plan_footprint_bytes,
    recoverable,
)
from repro.core.tiling import TilingPlanner, execute_tiled
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.util.errors import (
    DeadlineError,
    DtypeError,
    KernelExecutionError,
    NumericError,
    ReproError,
    ResourceError,
    ShapeError,
    StoreCorruptError,
    StrideError,
)
from tests.helpers import random_ttm_case, ttm_oracle


@pytest.fixture(autouse=True)
def _clean_pools():
    """Pool-poisoning tests must not leak dead executors to other tests."""
    yield
    shutdown_pools()


def _case(shape=(4, 5, 6), j=3, mode=1, seed=0):
    x, u, mode = random_ttm_case(shape, j, mode, seed=seed)
    return x, u, mode, ttm_oracle(x.data, u, mode)


# -- the fault injector itself ------------------------------------------------


def test_arm_rejects_unknown_point_and_bad_counts():
    f = FaultInjector()
    with pytest.raises(ValueError, match="unknown injection point"):
        f.arm("no-such-point")
    with pytest.raises(ValueError):
        f.arm("kernel-raise", times=0)
    with pytest.raises(ValueError):
        f.arm("kernel-raise", after=-1)


def test_rules_fire_by_count_and_context():
    f = FaultInjector().arm(
        "kernel-raise", exc=InjectedFault, times=2, after=1, kernel="blas"
    )
    # Non-matching context never fires (and does not consume the rule).
    assert f.check("kernel-raise", kernel="blocked") is False
    # First matching hit is skipped (after=1), next two fire, then disarmed.
    assert f.check("kernel-raise", kernel="blas") is False
    for _ in range(2):
        with pytest.raises(InjectedFault):
            f.check("kernel-raise", kernel="blas")
    assert f.check("kernel-raise", kernel="blas") is False
    assert f.count("kernel-raise") == 2


def test_excless_rule_returns_true_once():
    f = FaultInjector().arm("alloc-fail")
    assert f.check("alloc-fail") is True
    assert f.check("alloc-fail") is False  # times=1, now exhausted


def test_fault_injection_installs_and_nests():
    assert active_faults() is None
    with fault_injection() as outer:
        assert active_faults() is outer
        with fault_injection() as inner:
            assert active_faults() is inner
        assert active_faults() is outer
    assert active_faults() is None


# -- kernel fallback chain ----------------------------------------------------


def test_fallback_tiers_orderings():
    assert fallback_tiers("blas") == ("blas", "blocked", "reference")
    assert fallback_tiers("blocked") == ("blocked", "reference")
    assert fallback_tiers("reference") == ("reference",)
    assert fallback_tiers("auto") == ("auto", "blocked", "reference")


def test_recoverable_classification():
    assert recoverable(StrideError("general strides"))
    assert recoverable(MemoryError())
    assert recoverable(RuntimeError("BLAS error"))
    assert recoverable(FloatingPointError())
    # Typed repro errors would fail identically in every tier.
    assert not recoverable(ShapeError("bad"))
    assert not recoverable(DtypeError("bad"))
    assert not recoverable(TypeError("programming error"))


def test_chain_degrades_and_result_stays_correct():
    x, u, mode, oracle = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("BLAS died"), kernel="blas"
    )
    with fault_injection(faults), track_hot_path() as counters:
        y = ttm_inplace(x, u, plan=plan)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    assert faults.count("kernel-raise") == 1
    assert counters.kernel_fallbacks == 1


def test_degradation_is_sticky_within_one_call():
    # A rule that would kill blas forever fires exactly once: after the
    # first failure the chain starts every later dispatch at blocked.
    x, u, mode, oracle = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    assert len(plan.loop_extents) >= 1 and plan.loop_extents[0] > 1
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), times=1000, kernel="blas"
    )
    with fault_injection(faults):
        y = ttm_inplace(x, u, plan=plan)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    assert faults.count("kernel-raise") == 1


def test_chain_exhaustion_raises_typed_error():
    x, u, mode, _ = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    faults = FaultInjector()
    for kernel in FALLBACK_CHAIN:
        faults.arm("kernel-raise", exc=RuntimeError("boom"), times=1000,
                   kernel=kernel)
    with fault_injection(faults), pytest.raises(KernelExecutionError) as info:
        ttm_inplace(x, u, plan=plan)
    assert isinstance(info.value, ReproError)
    assert "reference" in str(info.value)


def test_non_recoverable_errors_pass_through():
    x, u, mode, _ = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    faults = FaultInjector().arm(
        "kernel-raise", exc=ShapeError("not a kernel's fault"), kernel="blas"
    )
    with fault_injection(faults), pytest.raises(ShapeError):
        ttm_inplace(x, u, plan=plan)


def test_batched_fast_path_degrades():
    x, u, mode, oracle = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="auto",
                        batched=True)
    assert plan.batch_modes  # the fast path is actually in play
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), batched=True
    )
    with fault_injection(faults), track_hot_path() as counters:
        y = ttm_inplace(x, u, plan=plan)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    assert counters.kernel_fallbacks == 1


def test_accumulate_degradation_never_leaves_partial_sums():
    x, u, mode, oracle = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    out = DenseTensor(np.ones(oracle.shape))
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), times=1000, kernel="blas"
    )
    with fault_injection(faults):
        ttm_inplace(x, u, plan=plan, out=out, accumulate=True)
    np.testing.assert_allclose(out.data, 1.0 + oracle, rtol=1e-12)


def test_real_stride_error_degrades_without_injection():
    # A genuine (non-injected) per-kernel failure: BLAS refuses
    # general-stride operands, the chain lands on blocked.
    plan = default_plan((8, 8), 0, 4, "ROW_MAJOR", kernel="blas",
                        batched=False)
    chain = KernelChain(build_gemm_tiers(plan))
    base = np.arange(64.0).reshape(8, 8)
    a = base[::2, ::2]  # both strides non-unit: not BLAS-expressible
    b = np.ones((4, 4))
    out = np.empty((4, 4))
    with track_hot_path() as counters:
        chain(a, b, out)
    np.testing.assert_allclose(out, a @ b)
    assert counters.kernel_fallbacks == 1
    assert chain.degraded and chain.kernel_name == "blocked"


def test_degradation_annotates_trace_span():
    x, u, mode, oracle = _case()
    plan = default_plan(x.shape, mode, 3, x.layout, kernel="blas",
                        batched=False)
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), kernel="blas"
    )
    with tracing() as tracer, fault_injection(faults):
        y = ttm_inplace(x, u, plan=plan)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    degraded = [
        s for s in tracer.collector.spans()
        if s.attrs.get("degraded_from") == "blas"
    ]
    assert degraded, "no span carries the degradation attributes"
    assert degraded[0].attrs["degraded_to"] == "blocked"
    assert degraded[0].attrs["degraded_error"] == "RuntimeError"
    assert tracer.counters.kernel_fallbacks == 1


# -- parfor supervision -------------------------------------------------------


def _run_parfor(threads, extents=(12,), timeout=None):
    seen = []
    total = parfor(
        extents, lambda idx: seen.append(idx), threads=threads,
        timeout=timeout,
    )
    return total, seen


def test_watchdog_raises_deadline_error_and_retires_pool():
    faults = FaultInjector().arm("slow-body", delay=2.0, times=4)
    with fault_injection(faults), track_hot_path() as counters:
        before = get_pool(2)
        with pytest.raises(DeadlineError) as info:
            parfor((8,), lambda idx: None, threads=2, timeout=0.05)
    assert isinstance(info.value, ReproError)
    assert isinstance(info.value, TimeoutError)
    assert counters.watchdog_timeouts == 1
    # The suspect pool must never be handed out again.
    assert get_pool(2) is not before


def test_watchdog_off_by_default_and_env_parsing(monkeypatch):
    monkeypatch.delenv(PARFOR_TIMEOUT_ENV, raising=False)
    assert default_timeout() is None
    monkeypatch.setenv(PARFOR_TIMEOUT_ENV, "2.5")
    assert default_timeout() == 2.5
    monkeypatch.setenv(PARFOR_TIMEOUT_ENV, "0")
    assert default_timeout() is None
    monkeypatch.setenv(PARFOR_TIMEOUT_ENV, "not-a-number")
    assert default_timeout() is None


def test_fast_workload_completes_under_watchdog():
    total, seen = _run_parfor(threads=2, extents=(64,), timeout=30.0)
    assert total == 64 and sorted(seen) == [(i,) for i in range(64)]


def test_pool_replacement_on_injected_submit_failure():
    faults = FaultInjector().arm("worker-death", exc=RuntimeError("pool died"))
    with fault_injection(faults), track_hot_path() as counters:
        total, seen = _run_parfor(threads=2, extents=(16,))
    assert total == 16 and len(seen) == 16
    assert counters.pool_replacements == 1
    assert counters.serial_degradations == 0


def test_serial_degradation_when_pools_keep_dying():
    faults = FaultInjector().arm(
        "worker-death", exc=RuntimeError("pool died"), times=2
    )
    with fault_injection(faults), track_hot_path() as counters:
        total, seen = _run_parfor(threads=3, extents=(4, 3))
    assert total == 12 and sorted(seen) == [
        (i, k) for i in range(4) for k in range(3)
    ]
    assert counters.pool_replacements == 2
    assert counters.serial_degradations == 1


def test_submit_after_shutdown_race_recovers():
    # The satellite bug: shutdown_pools tears a pool down after get_pool
    # returned it.  Simulated by shutting the registered pool down
    # directly — the registry still holds it, submit raises RuntimeError.
    pool = get_pool(2)
    pool.shutdown(wait=True)
    with track_hot_path() as counters:
        total, seen = _run_parfor(threads=2, extents=(10,))
    assert total == 10 and len(seen) == 10
    assert counters.pool_replacements == 1
    assert get_pool(2) is not pool


def test_body_exceptions_still_propagate():
    def body(index):
        if index == (3,):
            raise ValueError("body bug")

    with pytest.raises(ValueError, match="body bug"):
        parfor((8,), body, threads=2)


def test_parfor_counts_and_serial_path_ignore_supervision():
    # threads=1 must remain the zero-overhead inline loop even with an
    # injector active (no pool, no watchdog machinery).
    faults = FaultInjector().arm("worker-death", exc=RuntimeError("boom"),
                                 times=1000)
    with fault_injection(faults):
        total, seen = _run_parfor(threads=1, extents=(5,))
    assert total == 5 and len(seen) == 5
    assert faults.count("worker-death") == 0


# -- memory-pressure guard ----------------------------------------------------


def test_footprint_counts_output_and_working_sets():
    plan = default_plan((6, 7, 8), 1, 4, "ROW_MAJOR")
    with_out = plan_footprint_bytes(plan, allocate_out=True)
    without = plan_footprint_bytes(plan, allocate_out=False)
    assert with_out - without == plan.itemsize * 6 * 4 * 8
    assert without >= 0


def test_guard_is_identity_when_memory_suffices(monkeypatch):
    monkeypatch.setenv(MEM_LIMIT_ENV, str(1 << 40))
    plan = default_plan((4, 5, 6), 1, 3, "ROW_MAJOR")
    assert guard_memory(plan) is plan


def test_guard_raises_typed_resource_error(monkeypatch):
    monkeypatch.setenv(MEM_LIMIT_ENV, "1")
    plan = default_plan((6, 7, 8), 1, 4, "ROW_MAJOR")
    with pytest.raises(ResourceError) as info:
        guard_memory(plan)
    assert isinstance(info.value, MemoryError)
    assert isinstance(info.value, ReproError)
    assert "allow_replan" in str(info.value)


def test_ttm_preflight_raises_before_allocation(monkeypatch):
    monkeypatch.setenv(MEM_LIMIT_ENV, "1")
    x, u, mode, _ = _case()
    with pytest.raises(ResourceError):
        ttm_inplace(x, u, mode=mode)


def test_guard_replans_to_lower_degree(monkeypatch):
    x, u, mode, oracle = _case((6, 7, 8), 4, 1)
    plan = default_plan(x.shape, mode, 4, x.layout)
    assert plan.degree >= 1
    floor = default_plan(x.shape, mode, 4, x.layout, kernel="auto", degree=0)
    limit = plan_footprint_bytes(floor, allocate_out=True)
    assert limit < plan_footprint_bytes(plan, allocate_out=True)
    monkeypatch.setenv(MEM_LIMIT_ENV, str(limit))
    with track_hot_path() as counters:
        y = ttm_inplace(x, u, plan=plan, allow_replan=True)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    assert counters.memory_replans == 1


def test_replan_refused_without_opt_in(monkeypatch):
    x, u, mode, _ = _case((6, 7, 8), 4, 1)
    plan = default_plan(x.shape, mode, 4, x.layout)
    floor = default_plan(x.shape, mode, 4, x.layout, kernel="auto", degree=0)
    monkeypatch.setenv(
        MEM_LIMIT_ENV, str(plan_footprint_bytes(floor, allocate_out=True))
    )
    with pytest.raises(ResourceError):
        ttm_inplace(x, u, plan=plan, allow_replan=False)


def test_alloc_fail_injection_forces_pressure():
    x, u, mode, _ = _case()
    faults = FaultInjector().arm("alloc-fail")
    with fault_injection(faults), pytest.raises(ResourceError):
        ttm_inplace(x, u, mode=mode)
    assert faults.count("alloc-fail") == 1


def test_generated_executor_is_guarded_too(monkeypatch):
    monkeypatch.setenv(MEM_LIMIT_ENV, "1")
    x, u, mode, _ = _case()
    engine = InTensLi(executor="generated")
    with pytest.raises(ResourceError):
        engine.ttm(x, u, mode)


# -- plan-store read retries --------------------------------------------------


def _store_with_entries(tmp_path):
    store = PlanStore(str(tmp_path / "plans.json"), fingerprint="fp")
    plan = default_plan((4, 5, 6), 1, 3, "ROW_MAJOR")
    store.save({"k": {"plan": plan_to_dict(plan), "source": "estimator"}})
    return store


def test_store_load_retries_transient_oserror(tmp_path, monkeypatch):
    import repro.autotune.store as store_mod

    monkeypatch.setattr(store_mod, "_RETRY_BASE_SECONDS", 0.0)
    store = _store_with_entries(tmp_path)
    faults = FaultInjector().arm(
        "store-read-error", exc=OSError("transient I/O"), times=2
    )
    with fault_injection(faults), track_hot_path() as counters:
        entries = store.load()
    assert set(entries) == {"k"}
    assert counters.store_retries == 2


def test_store_load_exhausts_retries_into_typed_error(tmp_path, monkeypatch):
    import repro.autotune.store as store_mod

    monkeypatch.setattr(store_mod, "_RETRY_BASE_SECONDS", 0.0)
    store = _store_with_entries(tmp_path)
    faults = FaultInjector().arm(
        "store-read-error", exc=OSError("dead mount"), times=1000
    )
    with fault_injection(faults), pytest.raises(StoreCorruptError):
        with track_hot_path() as counters:
            store.load()
    assert faults.count("store-read-error") == store_mod._RETRY_ATTEMPTS
    assert counters.store_retries == store_mod._RETRY_ATTEMPTS - 1


def test_store_missing_file_returns_empty_without_retry(tmp_path):
    store = PlanStore(str(tmp_path / "absent.json"), fingerprint="fp")
    with track_hot_path() as counters:
        assert store.load() == {}
    assert counters.store_retries == 0


def test_plan_cache_goes_cold_when_store_read_exhausts(tmp_path, monkeypatch):
    # End to end: PlanCache's existing corrupt-store policy (restart
    # cold) composes with the retry loop instead of crashing the caller.
    import repro.autotune.store as store_mod
    from repro.autotune import PlanCache

    monkeypatch.setattr(store_mod, "_RETRY_BASE_SECONDS", 0.0)
    store = _store_with_entries(tmp_path)
    faults = FaultInjector().arm(
        "store-read-error", exc=OSError("dead mount"), times=1000
    )
    with fault_injection(faults):
        cache = PlanCache(path=store.path)
        assert cache.get_plan((4, 5, 6), 1, 3, "ROW_MAJOR", 1) is None


# -- check_finite -------------------------------------------------------------


def test_check_finite_raises_numeric_error_naming_kernel():
    x = DenseTensor(np.full((3, 4, 5), np.nan))
    u = np.ones((2, 4))
    with pytest.raises(NumericError) as info:
        ttm_inplace(x, u, mode=1, check_finite=True)
    assert isinstance(info.value, ArithmeticError)
    assert "kernel" in str(info.value)


def test_check_finite_passes_clean_results_and_is_opt_in():
    x, u, mode, oracle = _case()
    y = repro.ttm(x, u, mode, check_finite=True)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    # Opt-out default: NaNs flow through silently, as before this layer.
    bad = DenseTensor(np.full((3, 4), np.inf))
    out = repro.ttm(bad, np.ones((2, 3)), 0)
    assert not np.isfinite(out.data).all()


def test_check_finite_on_generated_executor():
    engine = InTensLi(executor="generated")
    x = DenseTensor(np.full((3, 4, 5), np.inf))
    with pytest.raises(NumericError):
        engine.ttm(x, np.ones((2, 4)), 1, check_finite=True)


# -- the facade-level acceptance contract -------------------------------------


@pytest.mark.parametrize("executor", ["interpreted", "generated"])
def test_facade_survives_kernel_faults(executor):
    # The top-level contract: with a kernel fault injected, InTensLi.ttm
    # still returns the oracle-correct result via a degraded path.
    x, u, mode, oracle = _case()
    engine = InTensLi(executor=executor)
    faults = FaultInjector().arm("kernel-raise", exc=RuntimeError("boom"))
    with fault_injection(faults), track_hot_path() as counters:
        y = engine.ttm(x, u, mode)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    assert faults.count("kernel-raise") == 1
    assert counters.kernel_fallbacks >= 1


def test_generated_executor_degrades_to_interpreted():
    x, u, mode, oracle = _case()
    engine = InTensLi(executor="generated")
    # Poison every chain kernel a few times: the generated run dies, the
    # interpreted rerun degrades tier by tier and still finishes.
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), times=2
    )
    with tracing() as tracer, fault_injection(faults):
        y = engine.ttm(x, u, mode)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-12)
    attrs = [s.attrs for s in tracer.collector.spans()]
    assert any(a.get("degraded_from") == "generated" for a in attrs)
    assert tracer.counters.kernel_fallbacks >= 1


def test_facade_faults_raise_only_typed_errors():
    # Non-recoverable injected failures surface as typed ReproErrors,
    # never as a bare RuntimeError from library internals.
    x, u, mode, _ = _case()
    engine = InTensLi(executor="generated")
    faults = FaultInjector().arm(
        "kernel-raise", exc=RuntimeError("boom"), times=10**6
    )
    with fault_injection(faults), pytest.raises(ReproError):
        engine.ttm(x, u, mode)


# -- error taxonomy -----------------------------------------------------------


def test_resilience_errors_are_typed_and_dual_rooted():
    assert issubclass(ResourceError, ReproError)
    assert issubclass(ResourceError, MemoryError)
    assert issubclass(KernelExecutionError, ReproError)
    assert issubclass(KernelExecutionError, RuntimeError)
    assert issubclass(DeadlineError, ReproError)
    assert issubclass(DeadlineError, TimeoutError)
    assert issubclass(NumericError, ReproError)
    assert issubclass(NumericError, ArithmeticError)
    assert issubclass(InjectedFault, RuntimeError)


def test_hot_counters_expose_resilience_events():
    counters = HotCounters()
    for event in HotCounters.RESILIENCE_EVENTS:
        counters.count_resilience(event)
        assert counters.as_dict()[event] == 1
    with pytest.raises(ValueError):
        counters.count_resilience("not_a_counter")


# -- out-of-core faults: tile scratch, memmap opens, pinned budgets ----------


def test_tile_scratch_alloc_fail_leaves_output_untouched():
    # execute_tiled pre-flights every tile (plans, scratch sizing, the
    # alloc-fail checkpoint) before writing a byte: a failure at tile k
    # must leave a preallocated output exactly as the caller filled it.
    shape, j, mode = (32, 16, 20), 5, 2
    rng = np.random.default_rng(11)
    x = DenseTensor(rng.standard_normal(shape))
    u = rng.standard_normal((j, shape[mode]))
    base = default_plan(shape, mode, j, x.layout)
    ws = plan_footprint_bytes(base, allocate_out=False)
    tiling = TilingPlanner().plan(base, budget=ws // 2, out_preallocated=True)
    assert tiling.tiled and tiling.n_tiles >= 2
    sentinel = -7.25
    out = DenseTensor(np.full((shape[0], shape[1], j), sentinel))
    with fault_injection() as faults:
        faults.arm(
            "alloc-fail", exc=ResourceError("injected scratch failure"),
            after=1, site="tile-scratch",
        )
        # The site filter keeps the rule away from the ctx-less budget
        # probe: available_bytes() must not trip (or consume) it.
        available_bytes()
        assert faults.fired == []
        with pytest.raises(ResourceError, match="injected scratch"):
            execute_tiled(x, u, tiling, out=out)
        assert faults.fired[0][1]["site"] == "tile-scratch"
    assert np.all(out.data == sentinel)


def test_memmap_open_fault_surfaces_as_resource_error(tmp_path):
    t = open_memmap_tensor(tmp_path / "x.npy", "w+", shape=(4, 5))
    t.data[...] = 1.0
    t.flush()
    with fault_injection() as faults:
        faults.arm(
            "store-read-error", exc=OSError("injected: disk gone"),
            site="memmap-open",
        )
        with pytest.raises(ResourceError, match="injected"):
            open_memmap_tensor(tmp_path / "x.npy", "r")
    # The rule is scoped to the injection block; the same open succeeds
    # afterwards and the stored bytes were never corrupted.
    again = open_memmap_tensor(tmp_path / "x.npy", "r")
    assert again.shape == (4, 5) and float(again.data[0, 0]) == 1.0


def test_pinned_budget_snapshots_env_and_nests(monkeypatch):
    monkeypatch.setenv(MEM_LIMIT_ENV, "1000")
    with pinned_budget() as pinned:
        assert pinned == 1000
        # A mid-region env flip is invisible: the pin serves the
        # snapshot so multi-step decisions agree with each other.
        monkeypatch.setenv(MEM_LIMIT_ENV, "1")
        assert available_bytes() == 1000
        with pinned_budget(5000):
            assert available_bytes() == 5000  # innermost pin wins
        assert available_bytes() == 1000
    # Outside the region the default re-read-per-call policy resumes.
    assert available_bytes() == 1


def test_alloc_fail_overrides_pinned_budget():
    # Determinism of the fault harness beats snapshot coherence: an
    # armed alloc-fail forces 0 even inside a generous pin.
    with fault_injection() as faults:
        faults.arm("alloc-fail", times=1000)
        with pinned_budget(1 << 30):
            assert available_bytes() == 0
    with pinned_budget(1 << 30):
        assert available_bytes() == 1 << 30


# -- fuzz: faults never change answers, only speed ---------------------------


@settings(max_examples=20, deadline=None)
@given(
    case=st.sampled_from([
        ((4, 5, 6), 3, 1),
        ((3, 4, 5), 2, 0),
        ((2, 3, 4, 5), 7, 2),
        ((5, 6), 4, 1),
    ]),
    poison=st.sets(st.sampled_from(["blas", "blocked"]), max_size=2),
    batched=st.booleans(),
    after=st.integers(min_value=0, max_value=2),
    seed=st.integers(min_value=0, max_value=5),
)
def test_fuzz_degraded_results_match_oracle(case, poison, batched, after,
                                            seed):
    shape, j, mode = case
    x, u, mode = random_ttm_case(shape, j, mode, seed=seed)
    oracle = ttm_oracle(x.data, u, mode)
    plan = default_plan(x.shape, mode, j, x.layout, kernel="blas",
                        batched=batched)
    faults = FaultInjector()
    for kernel in poison:
        faults.arm("kernel-raise", exc=RuntimeError("fuzz"), times=1000,
                   after=after, kernel=kernel)
    if batched:
        faults.arm("kernel-raise", exc=RuntimeError("fuzz"), after=after,
                   batched=True)
    with fault_injection(faults):
        y = ttm_inplace(x, u, plan=plan)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-10, atol=1e-12)
