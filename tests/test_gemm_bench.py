"""Tests for the GEMM shape benchmark / profile machinery."""

import numpy as np
import pytest

from repro.analysis import CORE_I7_4770K, XEON_E7_4820
from repro.gemm import GemmProfile, ShapePoint, measure_profile, synthetic_profile
from repro.gemm.bench import default_shape_grid
from repro.util.errors import BenchmarkError


class TestShapePoint:
    def test_working_set_bytes(self):
        p = ShapePoint(m=2, k=3, n=4, threads=1, gflops=1.0)
        assert p.working_set_bytes == 8 * (6 + 12 + 8)


class TestGemmProfile:
    @pytest.fixture()
    def profile(self):
        return synthetic_profile(
            default_shape_grid(k_exponents=range(4, 9), n_exponents=range(4, 9)),
            CORE_I7_4770K,
            threads=(1, 4),
        )

    def test_exact_lookup(self, profile):
        point = profile.points[0]
        got = profile.gflops(point.m, point.k, point.n, point.threads)
        assert got == point.gflops

    def test_nearest_lookup_interpolates(self, profile):
        # 48 is between profiled 32 and 64; nearest-in-log returns one of them.
        got = profile.gflops(16, 48, 64, 1)
        lo = profile.gflops(16, 32, 64, 1)
        hi = profile.gflops(16, 64, 64, 1)
        assert got in (lo, hi)

    def test_missing_thread_count_raises(self, profile):
        with pytest.raises(BenchmarkError):
            profile.gflops(16, 16, 16, threads=7)

    def test_series_filters_and_sorts(self, profile):
        series = profile.series(m=16, k=256, threads=4)
        assert all(p.k == 256 and p.threads == 4 for p in series)
        ns = [p.n for p in series]
        assert ns == sorted(ns)

    def test_peak_gflops(self, profile):
        assert profile.peak_gflops(4) >= profile.peak_gflops(1)

    def test_peak_gflops_missing_threads(self, profile):
        with pytest.raises(BenchmarkError):
            profile.peak_gflops(9)

    def test_thread_counts(self, profile):
        assert profile.thread_counts() == (1, 4)

    def test_json_roundtrip(self, profile):
        back = GemmProfile.from_json(profile.to_json())
        assert len(back) == len(profile)
        assert back.meta == profile.meta
        p = profile.points[3]
        assert back.gflops(p.m, p.k, p.n, p.threads) == p.gflops

    def test_save_load(self, profile, tmp_path):
        path = tmp_path / "profile.json"
        profile.save(str(path))
        assert len(GemmProfile.load(str(path))) == len(profile)

    def test_empty_profile_rejected(self):
        with pytest.raises(BenchmarkError):
            GemmProfile([])

    def test_repr(self, profile):
        assert "GemmProfile" in repr(profile)


class TestSyntheticProfile:
    def test_deterministic(self):
        shapes = [(16, 64, 64), (16, 128, 128)]
        a = synthetic_profile(shapes, CORE_I7_4770K)
        b = synthetic_profile(shapes, CORE_I7_4770K)
        assert [p.gflops for p in a.points] == [p.gflops for p in b.points]

    def test_fig8_shape_has_interior_peak(self):
        """m=16, k=512: performance rises, peaks, then declines with n."""
        shapes = [(16, 512, 2**e) for e in range(4, 16)]
        profile = synthetic_profile(shapes, CORE_I7_4770K, threads=(4,))
        series = [p.gflops for p in profile.series(threads=4)]
        peak = int(np.argmax(series))
        assert 0 < peak < len(series) - 1
        assert series[-1] < 0.8 * series[peak]
        assert series[0] < 0.8 * series[peak]

    def test_more_threads_not_slower(self):
        shapes = [(16, 512, 512)]
        p1 = synthetic_profile(shapes, CORE_I7_4770K, threads=(1,))
        p4 = synthetic_profile(shapes, CORE_I7_4770K, threads=(4,))
        assert p4.points[0].gflops >= p1.points[0].gflops

    def test_platforms_differ(self):
        shapes = [(16, 512, 512)]
        i7 = synthetic_profile(shapes, CORE_I7_4770K).points[0].gflops
        xeon = synthetic_profile(shapes, XEON_E7_4820).points[0].gflops
        assert i7 != xeon

    def test_meta_records_platform(self):
        p = synthetic_profile([(4, 4, 4)], CORE_I7_4770K)
        assert p.meta["source"] == "synthetic"
        assert "i7" in p.meta["platform"]


class TestMeasureProfile:
    def test_small_measurement_runs(self):
        profile = measure_profile(
            [(4, 8, 8), (4, 16, 16)], threads=(1,), min_seconds=0.001
        )
        assert len(profile) == 2
        assert all(p.gflops > 0 for p in profile.points)
        assert profile.meta["source"] == "measured"

    def test_multi_thread_measurement(self):
        profile = measure_profile(
            [(4, 16, 16)], threads=(1, 2), min_seconds=0.001
        )
        assert profile.thread_counts() == (1, 2)

    def test_validates_shapes(self):
        with pytest.raises(ValueError):
            measure_profile([(0, 4, 4)], min_seconds=0.001)


class TestDefaultShapeGrid:
    def test_grid_size(self):
        grid = default_shape_grid(k_exponents=(4, 5), n_exponents=(6,))
        assert grid == [(16, 16, 64), (16, 32, 64)]
