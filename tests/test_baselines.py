"""Tests for the baseline TTM implementations (Algorithm 1, CTF, table 1)."""

import numpy as np
import pytest

from repro.baselines import (
    REPRESENTATIONS,
    ttm_copy,
    ttm_ctf_like,
    ttm_fiber_form,
    ttm_matricized_form,
    ttm_scalar_form,
    ttm_slice_form,
)
from repro.baselines.ctf_like import (
    distribute_cyclic,
    processor_grid,
    undistribute_cyclic,
)
from repro.perf.profiler import PhaseProfiler
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError
from tests.helpers import TTM_CASES, ttm_oracle


def _case(shape, j, mode, layout=ROW_MAJOR, seed=0):
    rng = np.random.default_rng(seed)
    x = DenseTensor(rng.standard_normal(shape), layout)
    u = rng.standard_normal((j, shape[mode]))
    return x, u


class TestTtmCopy:
    @pytest.mark.parametrize("shape,j,mode", TTM_CASES)
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_matches_oracle(self, shape, j, mode, layout):
        x, u = _case(shape, j, mode, layout, seed=hash((shape, mode)) % 2**32)
        y = ttm_copy(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))
        assert y.layout is layout

    def test_profiler_sees_transform_and_multiply(self):
        x, u = _case((20, 20, 20), 4, 1)
        prof = PhaseProfiler()
        ttm_copy(x, u, 1, profiler=prof)
        p = prof.profile
        assert p.seconds["transform"] > 0
        assert p.seconds["multiply"] > 0
        # Transform buffers (X_mat + Y_mat) ~ half the charged storage.
        assert 0.2 < p.space_fraction("transform") < 0.8

    def test_transform_space_is_half_for_equal_output(self):
        """When J = I_n the matricization buffers equal X + Y exactly."""
        x, u = _case((12, 12, 12), 12, 1)
        prof = PhaseProfiler()
        ttm_copy(x, u, 1, profiler=prof)
        # X_mat + Y_mat = X + Y; the only asymmetry is U's small footprint.
        assert prof.profile.space_fraction("transform") == pytest.approx(
            0.5, abs=0.02
        )

    def test_threaded_variant(self):
        x, u = _case((10, 12, 14), 3, 1, seed=5)
        y = ttm_copy(x, u, 1, threads=3)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 1))

    def test_validation(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(TypeError):
            ttm_copy(np.zeros((3, 4)), np.zeros((2, 3)), 0)
        with pytest.raises(ShapeError):
            ttm_copy(x, np.zeros((2, 5)), 0)


class TestCtfLike:
    @pytest.mark.parametrize("shape,j,mode", TTM_CASES[:10])
    def test_matches_oracle(self, shape, j, mode):
        x, u = _case(shape, j, mode, seed=hash((shape, j)) % 2**32)
        y = ttm_ctf_like(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @pytest.mark.parametrize("nproc", [1, 2, 4, 6, 8])
    def test_any_processor_count(self, nproc):
        x, u = _case((6, 7, 8), 3, 1, seed=6)
        y = ttm_ctf_like(x, u, 1, nproc=nproc)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 1))

    def test_profiler_sees_redistribution(self):
        x, u = _case((12, 12, 12), 4, 1)
        prof = PhaseProfiler()
        ttm_ctf_like(x, u, 1, profiler=prof)
        p = prof.profile
        assert p.seconds["redistribute"] > 0
        assert p.seconds["transform"] > 0
        assert p.seconds["multiply"] > 0

    def test_col_major(self):
        x, u = _case((5, 6, 7), 2, 2, COL_MAJOR, seed=7)
        y = ttm_ctf_like(x, u, 2)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 2))

    def test_validation(self):
        with pytest.raises(TypeError):
            ttm_ctf_like(np.zeros((3, 4)), np.zeros((2, 3)), 0)
        with pytest.raises(ShapeError):
            ttm_ctf_like(DenseTensor.zeros((3, 4)), np.zeros((2, 5)), 0)


class TestProcessorGrid:
    def test_factors_into_order_dims(self):
        assert processor_grid(3, 8) == (2, 2, 2)
        assert processor_grid(2, 6) == (2, 3)
        assert processor_grid(3, 1) == (1, 1, 1)

    def test_product_equals_nproc(self):
        for order in (1, 2, 3, 4):
            for nproc in (1, 2, 3, 4, 6, 12):
                grid = processor_grid(order, nproc)
                assert int(np.prod(grid)) == nproc

    def test_distribute_undistribute_roundtrip(self):
        rng = np.random.default_rng(8)
        x = DenseTensor(rng.standard_normal((5, 6, 7)))
        grid = processor_grid(3, 4)
        blocks = distribute_cyclic(x, grid)
        back = undistribute_cyclic(blocks, x.shape, grid, x.layout)
        assert back.allclose(x.data)

    def test_blocks_partition_all_elements(self):
        x = DenseTensor(np.arange(24, dtype=float).reshape(2, 3, 4))
        blocks = distribute_cyclic(x, (2, 1, 2))
        assert sum(b.size for b in blocks) == 24
        values = np.concatenate([b.ravel() for b in blocks])
        assert sorted(values) == list(range(24))

    def test_grid_rank_mismatch(self):
        with pytest.raises(ShapeError):
            distribute_cyclic(DenseTensor.zeros((2, 2)), (2, 1, 1))


class TestRepresentations:
    @pytest.mark.parametrize("name", list(REPRESENTATIONS))
    def test_each_form_matches_oracle(self, name):
        fn, _level, _transform = REPRESENTATIONS[name]
        x, u = _case((4, 5, 3), 2, 0, seed=9)
        y = fn(x, u, 0)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 0))

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_fiber_form_all_modes(self, mode):
        x, u = _case((4, 5, 6), 3, mode, seed=10)
        y = ttm_fiber_form(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @pytest.mark.parametrize("mode", [0, 1, 2])
    def test_slice_form_all_modes(self, mode):
        x, u = _case((4, 5, 6), 3, mode, seed=11)
        y = ttm_slice_form(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    def test_slice_form_custom_slice_mode(self):
        x, u = _case((4, 5, 6), 3, 0, seed=12)
        y = ttm_slice_form(x, u, 0, slice_mode=1)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 0))

    def test_slice_form_rejects_same_mode(self):
        x, u = _case((4, 5, 6), 3, 0, seed=13)
        with pytest.raises(ShapeError):
            ttm_slice_form(x, u, 0, slice_mode=0)

    def test_slice_form_rejects_order1(self):
        x = DenseTensor.zeros((5,))
        with pytest.raises(ShapeError):
            ttm_slice_form(x, np.zeros((2, 5)), 0)

    def test_scalar_form_col_major(self):
        x, u = _case((3, 4, 2), 2, 1, COL_MAJOR, seed=14)
        y = ttm_scalar_form(x, u, 1)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 1))

    def test_matricized_is_algorithm1(self):
        x, u = _case((4, 5, 6), 3, 1, seed=15)
        assert np.allclose(
            ttm_matricized_form(x, u, 1).data, ttm_copy(x, u, 1).data
        )

    def test_table_metadata(self):
        assert REPRESENTATIONS["scalar"][1] == "Slow"
        assert REPRESENTATIONS["fiber"][1] == "L2"
        assert REPRESENTATIONS["slice"][1] == "L3"
        assert REPRESENTATIONS["matricized"][2] is True
        assert REPRESENTATIONS["slice"][2] is False
