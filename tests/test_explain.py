"""Tests for the plan explainer."""


from repro.core.explain import explain_plan
from repro.core.inttm import default_plan
from repro.core.partition import PAPER_THRESHOLDS
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR


class TestExplainPlan:
    def test_natural_strategy_narrative(self):
        plan = default_plan((50, 50, 50), 0, 16, ROW_MAJOR)
        text = explain_plan(plan)
        assert "forward" in text
        assert "natural choice for row-major" in text
        assert "unit-stride" in text

    def test_fallback_strategy_narrative(self):
        plan = default_plan((50, 50, 50), 2, 16, ROW_MAJOR)
        text = explain_plan(plan)
        assert "fallback" in text
        assert "backward" in text

    def test_threshold_window_membership(self):
        plan = default_plan((64, 64, 64, 64), 0, 16, ROW_MAJOR, degree=2)
        text = explain_plan(plan, PAPER_THRESHOLDS)
        assert "MSTH" in text and "MLTH" in text

    def test_no_loop_case(self):
        plan = default_plan((50, 50, 50), 0, 16, ROW_MAJOR)  # full merge
        assert "single kernel call" in explain_plan(plan)

    def test_loop_case_counts_iterations(self):
        plan = default_plan((7, 50, 50, 50), 1, 16, ROW_MAJOR, degree=1)
        text = explain_plan(plan)
        assert "kernel invocations" in text
        assert "350" in text  # 7 x 50

    def test_thread_narratives(self):
        serial = default_plan((50, 50, 50), 0, 16, ROW_MAJOR)
        assert "serial" in explain_plan(serial)
        loops = default_plan((50, 50, 50), 1, 16, ROW_MAJOR,
                             loop_threads=4, degree=1)
        assert "P_L=4" in explain_plan(loops)
        kernel = default_plan((50, 50, 50), 0, 16, ROW_MAJOR,
                              kernel_threads=4)
        assert "P_C=4" in explain_plan(kernel)

    def test_kernel_legality_narrative(self):
        plan = default_plan((50, 50, 50), 1, 16, COL_MAJOR)
        text = explain_plan(plan)
        assert "BLAS-legal" in text

    def test_describe_line_is_first(self):
        plan = default_plan((5, 5), 0, 2, ROW_MAJOR)
        assert explain_plan(plan).splitlines()[0] == plan.describe()
