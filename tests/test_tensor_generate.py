"""Tests for synthetic tensor generators."""

import numpy as np
import pytest

from repro.tensor.dense import DenseTensor
from repro.tensor.generate import (
    arange_tensor,
    low_rank_tensor,
    md_trajectory_tensor,
    random_tensor,
)
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.unfold import unfold


class TestRandomTensor:
    def test_shape_and_layout(self):
        t = random_tensor((3, 4), COL_MAJOR, seed=0)
        assert t.shape == (3, 4)
        assert t.layout is COL_MAJOR

    def test_deterministic(self):
        a = random_tensor((3, 4), seed=1)
        b = random_tensor((3, 4), seed=1)
        assert np.array_equal(a.data, b.data)

    def test_different_seeds_differ(self):
        a = random_tensor((3, 4), seed=1)
        b = random_tensor((3, 4), seed=2)
        assert not np.array_equal(a.data, b.data)


class TestArangeTensor:
    def test_values_follow_storage_order(self):
        c = arange_tensor((2, 3), ROW_MAJOR)
        assert c.data[0, 0] == 1 and c.data[0, 1] == 2
        f = arange_tensor((2, 3), COL_MAJOR)
        assert f.data[0, 0] == 1 and f.data[1, 0] == 2

    def test_custom_start(self):
        t = arange_tensor((2, 2), start=0)
        assert t.data.min() == 0 and t.data.max() == 3


class TestLowRankTensor:
    def test_exact_low_rank_has_low_rank_unfoldings(self):
        t = low_rank_tensor((8, 9, 10), ranks=(2, 3, 4), seed=3)
        for mode, rank in enumerate((2, 3, 4)):
            s = np.linalg.svd(unfold(t, mode), compute_uv=False)
            assert np.sum(s > 1e-8 * s[0]) == rank

    def test_scalar_rank_broadcasts(self):
        t = low_rank_tensor((6, 7, 8), ranks=2, seed=4)
        s = np.linalg.svd(unfold(t, 0), compute_uv=False)
        assert np.sum(s > 1e-8 * s[0]) == 2

    def test_rank_clamped_to_dimension(self):
        t = low_rank_tensor((2, 7), ranks=5, seed=5)
        assert t.shape == (2, 7)

    def test_noise_perturbs_rank(self):
        t = low_rank_tensor((6, 6, 6), ranks=2, noise=0.1, seed=6)
        s = np.linalg.svd(unfold(t, 0), compute_uv=False)
        assert np.sum(s > 1e-8 * s[0]) > 2

    def test_rank_shape_mismatch_raises(self):
        with pytest.raises(ValueError):
            low_rank_tensor((3, 4, 5), ranks=(2, 2), seed=7)

    def test_returns_dense_tensor_with_layout(self):
        t = low_rank_tensor((3, 4), ranks=2, layout=COL_MAJOR, seed=8)
        assert isinstance(t, DenseTensor)
        assert t.layout is COL_MAJOR


class TestMdTrajectory:
    def test_shape(self):
        t = md_trajectory_tensor(16, 10, seed=9)
        assert t.shape == (16, 10, 3)

    def test_collective_motion_dominates_noise(self):
        """Centred trajectories concentrate variance in few temporal modes."""
        t = md_trajectory_tensor(64, 20, n_modes=2, seed=10)
        frames = t.data.reshape(64, -1)
        centered = frames - frames.mean(axis=0)
        s = np.linalg.svd(centered, compute_uv=False)
        energy = np.cumsum(s**2) / np.sum(s**2)
        assert energy[1] > 0.9  # two collective modes carry the signal

    def test_validates_arguments(self):
        with pytest.raises(ValueError):
            md_trajectory_tensor(0, 5)
        with pytest.raises(TypeError):
            md_trajectory_tensor(2.5, 5)
