"""Algebraic property tests for the TTM operation itself.

These pin the mathematical identities of the mode-n product (Kolda &
Bader §2) on the *production* implementation — the input-adaptive
generated code — rather than on any single kernel:

* linearity in both arguments;
* identity matrix acts as identity;
* same-mode composition collapses to a matrix product;
* distinct-mode products commute;
* the mode-n product matches the matricized form U @ X_(n).
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.inttm import ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.unfold import fold, unfold


shapes = st.lists(st.integers(2, 5), min_size=1, max_size=4)


def dense(shape, layout=ROW_MAJOR, seed=0):
    rng = np.random.default_rng(seed)
    return DenseTensor(rng.standard_normal(shape), layout)


class TestLinearity:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_linear_in_tensor(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(1)
        a = rng.standard_normal(shape)
        b = rng.standard_normal(shape)
        u = rng.standard_normal((3, shape[mode]))
        alpha, beta = 2.5, -1.25
        combined = ttm_inplace(DenseTensor(alpha * a + beta * b), u, mode)
        separate = (
            alpha * ttm_inplace(DenseTensor(a), u, mode).data
            + beta * ttm_inplace(DenseTensor(b), u, mode).data
        )
        assert np.allclose(combined.data, separate)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_linear_in_matrix(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(2)
        x = dense(shape, seed=3)
        u = rng.standard_normal((3, shape[mode]))
        v = rng.standard_normal((3, shape[mode]))
        combined = ttm_inplace(x, u + v, mode)
        separate = (
            ttm_inplace(x, u, mode).data + ttm_inplace(x, v, mode).data
        )
        assert np.allclose(combined.data, separate)


class TestIdentities:
    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_identity_matrix_is_identity(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        x = dense(shape, layout, seed=4)
        y = ttm_inplace(x, np.eye(shape[mode]), mode)
        assert np.allclose(y.data, x.data)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_same_mode_composition_is_matrix_product(self, shape, data):
        """(X x_n U) x_n V == X x_n (V U) — Kolda & Bader property 2."""
        mode = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(5)
        x = dense(shape, seed=6)
        u = rng.standard_normal((3, shape[mode]))
        v = rng.standard_normal((2, 3))
        chained = ttm_inplace(ttm_inplace(x, u, mode), v, mode)
        direct = ttm_inplace(x, v @ u, mode)
        assert np.allclose(chained.data, direct.data)

    @settings(max_examples=25, deadline=None)
    @given(shape=shapes.filter(lambda s: len(s) >= 2), data=st.data())
    def test_matricized_identity(self, shape, data):
        """Y_(n) == U @ X_(n) — the equivalence Algorithm 1 exploits."""
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        rng = np.random.default_rng(7)
        x = dense(shape, layout, seed=8)
        u = rng.standard_normal((3, shape[mode]))
        y = ttm_inplace(x, u, mode)
        assert np.allclose(unfold(y, mode), u @ unfold(x, mode))

    @settings(max_examples=15, deadline=None)
    @given(shape=shapes.filter(lambda s: len(s) >= 2), data=st.data())
    def test_fold_of_matricized_product_reconstructs(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        rng = np.random.default_rng(9)
        x = dense(shape, seed=10)
        u = rng.standard_normal((2, shape[mode]))
        y = ttm_inplace(x, u, mode)
        rebuilt = fold(u @ unfold(x, mode), mode, y.shape, x.layout)
        assert rebuilt.allclose(y.data)


class TestProductionPathMatchesKernelPath:
    """The facade (estimated plan + generated code) equals the plain
    interpreter on every geometry in the shared case grid."""

    @settings(max_examples=20, deadline=None)
    @given(shape=shapes, data=st.data())
    def test_facade_equals_interpreter(self, shape, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        j = data.draw(st.integers(1, 4))
        rng = np.random.default_rng(11)
        x = DenseTensor(rng.standard_normal(shape), layout)
        u = rng.standard_normal((j, shape[mode]))
        via_facade = repro.ttm(x, u, mode)
        via_interpreter = ttm_inplace(x, u, mode)
        assert np.allclose(via_facade.data, via_interpreter.data)


class TestNumericalAccuracy:
    def test_agreement_with_einsum_at_scale(self):
        """Accumulation order differs between kernels; agreement must be
        at the level of float64 dot-product conditioning."""
        rng = np.random.default_rng(12)
        x = DenseTensor(rng.standard_normal((40, 200, 30)))
        u = rng.standard_normal((8, 200))
        y = repro.ttm(x, u, 1)
        reference = np.einsum("jk,ikl->ijl", u, x.data)
        scale = np.abs(reference).max()
        assert np.allclose(y.data, reference, atol=1e-10 * scale)

    def test_ill_conditioned_cancellation(self):
        """Columns that nearly cancel: results stay within a tight
        multiple of machine epsilon times the accumulation magnitude."""
        n = 128
        x = DenseTensor(np.ones((4, n, 4)) * 1e8)
        u = np.concatenate(
            [np.ones((1, n)), -np.ones((1, n))], axis=0
        )  # rows sum to +/- n * 1e8
        u[1, 0] = -1.0 + 1e-8
        y = repro.ttm(x, u, 1)
        expected_row0 = n * 1e8
        assert np.allclose(y.data[:, 0, :], expected_row0)
