"""Unit + property tests for mode-n unfolding/folding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.tensor.dense import DenseTensor
from repro.tensor.generate import arange_tensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.unfold import (
    fold,
    inverse_permutation,
    logical_unfold,
    logical_unfold_axes,
    unfold,
    unfold_permutation,
    vec,
)
from repro.util.errors import LayoutError, ShapeError


class TestPermutations:
    def test_unfold_permutation_moves_mode_first(self):
        assert unfold_permutation(4, 2) == (2, 0, 1, 3)
        assert unfold_permutation(3, 0) == (0, 1, 2)

    def test_unfold_permutation_validates_mode(self):
        with pytest.raises(ShapeError):
            unfold_permutation(3, 3)

    def test_inverse_permutation(self):
        perm = (2, 0, 1, 3)
        inv = inverse_permutation(perm)
        assert tuple(perm[i] for i in inv) == (0, 1, 2, 3)
        assert tuple(inv[i] for i in perm) == (0, 1, 2, 3)


class TestPaperExample:
    """Equation (3): the 3x4x2 tensor with elements 1..24 (MATLAB order)."""

    @pytest.fixture()
    def x(self):
        return arange_tensor((3, 4, 2), layout=COL_MAJOR)

    def test_mode0_unfolding(self, x):
        expected = np.array(
            [
                [1, 4, 7, 10, 13, 16, 19, 22],
                [2, 5, 8, 11, 14, 17, 20, 23],
                [3, 6, 9, 12, 15, 18, 21, 24],
            ],
            dtype=float,
        )
        assert np.array_equal(unfold(x, 0), expected)

    def test_mode1_unfolding(self, x):
        expected = np.array(
            [
                [1, 2, 3, 13, 14, 15],
                [4, 5, 6, 16, 17, 18],
                [7, 8, 9, 19, 20, 21],
                [10, 11, 12, 22, 23, 24],
            ],
            dtype=float,
        )
        assert np.array_equal(unfold(x, 1), expected)

    def test_mode2_unfolding(self, x):
        expected = np.vstack(
            [np.arange(1, 13, dtype=float), np.arange(13, 25, dtype=float)]
        )
        assert np.array_equal(unfold(x, 2), expected)


class TestUnfoldFoldRoundtrip:
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    @pytest.mark.parametrize("mode", [0, 1, 2, 3])
    def test_roundtrip_order4(self, layout, mode):
        t = DenseTensor.random((2, 3, 4, 5), layout, seed=11)
        mat = unfold(t, mode)
        back = fold(mat, mode, t.shape, layout)
        assert back.allclose(t.data)
        assert back.layout is layout

    def test_unfold_output_contiguity_matches_layout(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=12)
        assert unfold(t, 1).flags["C_CONTIGUOUS"]
        f = DenseTensor.random((3, 4, 5), COL_MAJOR, seed=12)
        assert unfold(f, 1).flags["F_CONTIGUOUS"]

    def test_unfold_always_copies(self):
        t = DenseTensor.random((3, 4), ROW_MAJOR, seed=13)
        assert not np.shares_memory(unfold(t, 0), t.data)

    def test_fold_shape_mismatch_raises(self):
        with pytest.raises(LayoutError):
            fold(np.zeros((3, 5)), 0, (3, 4), ROW_MAJOR)

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 5), min_size=1, max_size=5),
        layout=st.sampled_from([ROW_MAJOR, COL_MAJOR]),
        data=st.data(),
    )
    def test_property_roundtrip(self, shape, layout, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        t = DenseTensor(
            np.arange(int(np.prod(shape)), dtype=float).reshape(shape), layout
        )
        assert fold(unfold(t, mode), mode, shape, layout).allclose(t.data)

    @settings(max_examples=40, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 5), min_size=2, max_size=4),
        layout=st.sampled_from([ROW_MAJOR, COL_MAJOR]),
        data=st.data(),
    )
    def test_property_unfold_columns_enumerate_fibers(self, shape, layout, data):
        """Column j of X_(n) is a mode-n fiber: every column, as a set of
        values, appears as some fiber of the tensor."""
        mode = data.draw(st.integers(0, len(shape) - 1))
        t = DenseTensor(
            np.arange(int(np.prod(shape)), dtype=float).reshape(shape), layout
        )
        mat = unfold(t, mode)
        fibers = np.moveaxis(t.data, mode, 0).reshape(shape[mode], -1)
        got = {tuple(col) for col in mat.T}
        expected = {tuple(col) for col in fibers.T}
        assert got == expected


class TestLogicalUnfold:
    def test_row_major_mode0_is_view(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=14)
        lu = logical_unfold(t, 0)
        assert np.shares_memory(lu, t.data)
        assert np.array_equal(lu, unfold(t, 0))

    def test_col_major_last_mode_is_view(self):
        t = DenseTensor.random((3, 4, 5), COL_MAJOR, seed=15)
        lu = logical_unfold(t, 2)
        assert np.shares_memory(lu, t.data)
        assert np.array_equal(lu, unfold(t, 2))

    def test_other_modes_raise(self):
        t = DenseTensor.random((3, 4, 5), ROW_MAJOR, seed=16)
        with pytest.raises(LayoutError):
            logical_unfold(t, 1)
        with pytest.raises(LayoutError):
            logical_unfold(t, 2)

    def test_logical_unfold_axes(self):
        assert logical_unfold_axes(4, ROW_MAJOR) == (0,)
        assert logical_unfold_axes(4, COL_MAJOR) == (3,)
        assert logical_unfold_axes(0, ROW_MAJOR) == ()

    def test_order1_unfolds_as_column(self):
        t = DenseTensor(np.arange(4, dtype=float))
        assert logical_unfold(t, 0).shape == (4, 1)


class TestVec:
    def test_vec_row_major(self):
        t = arange_tensor((2, 3), ROW_MAJOR)
        assert np.array_equal(vec(t), np.arange(1.0, 7.0))

    def test_vec_col_major_follows_storage(self):
        t = arange_tensor((2, 3), COL_MAJOR)
        assert np.array_equal(vec(t), np.arange(1.0, 7.0))

    def test_vec_is_view(self):
        t = DenseTensor.zeros((2, 2))
        vec(t)[0] = 3.0
        assert t.data[0, 0] == 3.0
