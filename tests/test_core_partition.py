"""Tests for mode partitioning and threshold derivation (§4.3.1)."""

import pytest

from repro.analysis import CORE_I7_4770K
from repro.core.partition import (
    PAPER_MLTH_BYTES,
    PAPER_MSTH_BYTES,
    PAPER_THRESHOLDS,
    Thresholds,
    available_component_modes,
    choose_degree,
    component_modes_for_degree,
    derive_thresholds,
    describe_profile,
    kernel_working_set_bytes,
)
from repro.gemm.bench import GemmProfile, ShapePoint, synthetic_profile
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import BenchmarkError, PlanError


class TestThresholds:
    def test_paper_values(self):
        assert PAPER_MSTH_BYTES == int(1.04 * 1024**2)
        assert PAPER_MLTH_BYTES == int(7.04 * 1024**2)
        assert PAPER_THRESHOLDS.kappa == 0.8

    def test_contains(self):
        t = Thresholds(100, 200)
        assert t.contains(100) and t.contains(150) and t.contains(200)
        assert not t.contains(99) and not t.contains(201)

    def test_ordering_enforced(self):
        with pytest.raises(PlanError):
            Thresholds(200, 100)

    def test_kappa_validated(self):
        with pytest.raises(ValueError):
            Thresholds(1, 2, kappa=1.5)


class TestAvailableComponentModes:
    def test_row_major_takes_trailing(self):
        assert available_component_modes(5, 1, ROW_MAJOR) == (2, 3, 4)
        assert available_component_modes(5, 4, ROW_MAJOR) == ()

    def test_col_major_takes_leading(self):
        assert available_component_modes(5, 3, COL_MAJOR) == (0, 1, 2)
        assert available_component_modes(5, 0, COL_MAJOR) == ()

    def test_lemma41_bound(self):
        """At most max(n-1, N-n) modes are mergeable (1-based lemma)."""
        for order in range(2, 6):
            for mode in range(order):
                fwd = available_component_modes(order, mode, ROW_MAJOR)
                bwd = available_component_modes(order, mode, COL_MAJOR)
                n1 = mode + 1  # 1-based mode
                assert max(len(fwd), len(bwd)) == max(n1 - 1, order - n1)


class TestComponentModesForDegree:
    def test_forward_anchored_at_last_mode(self):
        assert component_modes_for_degree(5, 1, ROW_MAJOR, 2) == (3, 4)
        assert component_modes_for_degree(5, 1, ROW_MAJOR, 3) == (2, 3, 4)

    def test_backward_anchored_at_first_mode(self):
        assert component_modes_for_degree(5, 3, COL_MAJOR, 2) == (0, 1)

    def test_degree_zero(self):
        assert component_modes_for_degree(4, 1, ROW_MAJOR, 0) == ()

    def test_out_of_range(self):
        with pytest.raises(PlanError):
            component_modes_for_degree(4, 1, ROW_MAJOR, 3)
        with pytest.raises(PlanError):
            component_modes_for_degree(4, 1, ROW_MAJOR, -1)


class TestKernelWorkingSet:
    def test_formula(self):
        # shape (4,5,6), mode 1, J=3, comp (2,): X_sub 5x6, U 3x5, Y_sub 3x6.
        ws = kernel_working_set_bytes((4, 5, 6), 1, 3, (2,))
        assert ws == 8 * (30 + 15 + 18)

    def test_empty_component_set(self):
        ws = kernel_working_set_bytes((4, 5, 6), 1, 3, ())
        assert ws == 8 * (5 + 15 + 3)


class TestDeriveThresholds:
    @pytest.fixture()
    def profile(self):
        shapes = [(16, 2**ke, 2**ne) for ke in range(6, 11) for ne in range(4, 15)]
        return synthetic_profile(shapes, CORE_I7_4770K, threads=(1, 4))

    def test_window_is_ordered_and_positive(self, profile):
        t = derive_thresholds(profile, 16, threads=4)
        assert 0 < t.msth_bytes <= t.mlth_bytes

    def test_window_brackets_peak_working_set(self, profile):
        """The best-performing shape's working set lies inside [MSTH, MLTH]."""
        t = derive_thresholds(profile, 16, threads=4)
        best = max(
            profile.series(m=16, threads=4), key=lambda p: p.gflops
        )
        assert t.msth_bytes <= best.working_set_bytes <= t.mlth_bytes

    def test_kappa_widens_window(self, profile):
        narrow = derive_thresholds(profile, 16, threads=4, kappa=0.95)
        wide = derive_thresholds(profile, 16, threads=4, kappa=0.5)
        assert wide.mlth_bytes >= narrow.mlth_bytes
        assert wide.msth_bytes <= narrow.msth_bytes

    def test_default_threads_is_max(self, profile):
        t_default = derive_thresholds(profile, 16)
        t_four = derive_thresholds(profile, 16, threads=4)
        assert t_default == t_four

    def test_missing_m_raises(self, profile):
        with pytest.raises(BenchmarkError):
            derive_thresholds(profile, 999, threads=4)

    def test_too_short_series_raises(self):
        points = [
            ShapePoint(16, 64, 64, 1, 10.0),
            ShapePoint(16, 64, 128, 1, 12.0),
        ]
        with pytest.raises(BenchmarkError):
            derive_thresholds(GemmProfile(points), 16, threads=1)

    def test_missing_m_error_names_the_profile(self, profile):
        with pytest.raises(BenchmarkError) as exc_info:
            derive_thresholds(profile, 999, threads=4)
        message = str(exc_info.value)
        assert "GemmProfile(" in message
        assert "m=999" in message and "threads=4" in message

    def test_all_short_series_error_names_profile_and_counts(self):
        # Two k-series, each with only 2 n-points: every series is too
        # short, and the error says which profile and how many failed.
        points = [
            ShapePoint(16, 64, 64, 1, 10.0),
            ShapePoint(16, 64, 128, 1, 12.0),
            ShapePoint(16, 128, 64, 1, 11.0),
            ShapePoint(16, 128, 128, 1, 13.0),
        ]
        with pytest.raises(BenchmarkError) as exc_info:
            derive_thresholds(GemmProfile(points), 16, threads=1)
        message = str(exc_info.value)
        assert "GemmProfile(" in message
        assert "2" in message and "fewer than 3" in message


class TestDescribeProfile:
    def test_names_source_and_point_count(self):
        shapes = [(16, 64, 2**ne) for ne in range(4, 8)]
        profile = synthetic_profile(shapes, CORE_I7_4770K)
        label = describe_profile(profile)
        assert "synthetic" in label
        assert str(len(profile)) in label

    def test_tolerates_profiles_without_meta(self):
        profile = GemmProfile([ShapePoint(16, 64, 64, 1, 10.0)])
        label = describe_profile(profile)
        assert "unknown-source" in label and "1 points" in label


class TestChooseDegree:
    def test_respects_mlth_upper_bound(self):
        # 100^5 tensor, mode 0: degrees 1..4 give P = 100..1e8.
        t = Thresholds(8 * 1024, 512 * 1024)  # tiny window
        degree = choose_degree((100,) * 5, 0, ROW_MAJOR, 16, t)
        comp = component_modes_for_degree(5, 0, ROW_MAJOR, degree)
        ws = kernel_working_set_bytes((100,) * 5, 0, 16, comp)
        assert ws <= t.mlth_bytes
        # The next degree would overflow the window.
        comp_next = component_modes_for_degree(5, 0, ROW_MAJOR, degree + 1)
        assert (
            kernel_working_set_bytes((100,) * 5, 0, 16, comp_next)
            > t.mlth_bytes
        )

    def test_grows_to_reach_msth(self):
        # Huge window: takes the maximal degree within MLTH.
        t = Thresholds(1024**2, 1024**3)
        degree = choose_degree((64, 64, 64, 64), 0, ROW_MAJOR, 16, t)
        assert degree == 3

    def test_minimum_degree_is_one_even_if_too_big(self):
        t = Thresholds(16, 32)  # absurdly small window
        assert choose_degree((100, 100, 100), 0, ROW_MAJOR, 16, t) == 1

    def test_last_mode_falls_back_to_backward_strategy(self):
        t = PAPER_THRESHOLDS
        # Mode N-1 row-major: forward has nothing, so the backward side is
        # used and the degree is >= 1.
        assert choose_degree((100, 100, 100), 2, ROW_MAJOR, 16, t) >= 1

    def test_order1_gives_zero(self):
        assert choose_degree((100,), 0, ROW_MAJOR, 16, PAPER_THRESHOLDS) == 0

    def test_col_major_uses_leading_modes(self):
        t = Thresholds(1024**2, 1024**3)
        degree = choose_degree((64, 64, 64, 64), 3, COL_MAJOR, 16, t)
        assert degree == 3
