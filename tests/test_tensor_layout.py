"""Unit tests for repro.tensor.layout."""

import numpy as np
import pytest

from repro.tensor.layout import (
    COL_MAJOR,
    ROW_MAJOR,
    Layout,
    contiguous_mode_runs,
    element_strides,
    is_contiguous_run,
    leading_mode,
    linear_index,
    merged_extent,
    storage_order,
)
from repro.util.errors import LayoutError


class TestLayoutParse:
    def test_parse_layout_passthrough(self):
        assert Layout.parse(ROW_MAJOR) is ROW_MAJOR
        assert Layout.parse(COL_MAJOR) is COL_MAJOR

    @pytest.mark.parametrize("text", ["C", "c", "row", "ROW_MAJOR", "row-major"])
    def test_parse_row_major_spellings(self, text):
        assert Layout.parse(text) is ROW_MAJOR

    @pytest.mark.parametrize("text", ["F", "f", "col", "COL_MAJOR", "column_major"])
    def test_parse_col_major_spellings(self, text):
        assert Layout.parse(text) is COL_MAJOR

    @pytest.mark.parametrize("bad", ["X", "", 3, None])
    def test_parse_rejects_garbage(self, bad):
        with pytest.raises(LayoutError):
            Layout.parse(bad)

    def test_numpy_order_characters(self):
        assert ROW_MAJOR.numpy_order == "C"
        assert COL_MAJOR.numpy_order == "F"


class TestElementStrides:
    def test_row_major_strides(self):
        assert element_strides((3, 4, 5), ROW_MAJOR) == (20, 5, 1)

    def test_col_major_strides(self):
        assert element_strides((3, 4, 5), COL_MAJOR) == (1, 3, 12)

    def test_scalar_shape(self):
        assert element_strides((), ROW_MAJOR) == ()
        assert element_strides((), COL_MAJOR) == ()

    def test_vector_strides_match_both_layouts(self):
        assert element_strides((7,), ROW_MAJOR) == (1,)
        assert element_strides((7,), COL_MAJOR) == (1,)

    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_agrees_with_numpy(self, layout):
        shape = (2, 3, 4, 5)
        arr = np.empty(shape, order=layout.numpy_order)
        np_strides = tuple(s // arr.itemsize for s in arr.strides)
        assert element_strides(shape, layout) == np_strides


class TestStorageOrder:
    def test_row_major_order(self):
        assert storage_order(4, ROW_MAJOR) == (0, 1, 2, 3)

    def test_col_major_order(self):
        assert storage_order(4, COL_MAJOR) == (3, 2, 1, 0)

    def test_leading_mode(self):
        assert leading_mode(3, ROW_MAJOR) == 2
        assert leading_mode(3, COL_MAJOR) == 0

    def test_leading_mode_rejects_scalar(self):
        with pytest.raises(LayoutError):
            leading_mode(0, ROW_MAJOR)


class TestLinearIndex:
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_matches_numpy_flat_position(self, layout):
        shape = (3, 4, 2)
        arr = np.arange(24, dtype=float).reshape(-1)
        cube = arr.reshape(shape, order=layout.numpy_order)
        for i in range(3):
            for j in range(4):
                for k in range(2):
                    offset = linear_index((i, j, k), shape, layout)
                    assert cube[i, j, k] == arr[offset]

    def test_out_of_bounds_raises(self):
        with pytest.raises(IndexError):
            linear_index((3, 0), (3, 4), ROW_MAJOR)

    def test_rank_mismatch_raises(self):
        with pytest.raises(LayoutError):
            linear_index((0, 0), (3, 4, 5), ROW_MAJOR)


class TestContiguityPredicates:
    def test_single_mode_is_a_run(self):
        assert is_contiguous_run([2], 4)

    def test_consecutive_modes_are_a_run(self):
        assert is_contiguous_run([1, 2, 3], 5)

    def test_gap_is_not_a_run(self):
        assert not is_contiguous_run([0, 2], 4)

    def test_empty_is_not_a_run(self):
        assert not is_contiguous_run([], 4)

    def test_out_of_range_is_not_a_run(self):
        assert not is_contiguous_run([3, 4], 4)

    def test_merged_extent(self):
        assert merged_extent((3, 4, 5), (1, 2)) == 20
        assert merged_extent((3, 4, 5), ()) == 1

    def test_contiguous_mode_runs_splits_gaps(self):
        assert contiguous_mode_runs([0, 1, 3, 5, 6]) == [(0, 1), (3,), (5, 6)]

    def test_contiguous_mode_runs_handles_unsorted(self):
        assert contiguous_mode_runs([3, 1, 0]) == [(0, 1), (3,)]

    def test_contiguous_mode_runs_empty(self):
        assert contiguous_mode_runs([]) == []
