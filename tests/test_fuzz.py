"""Randomized end-to-end fuzzing: composite pipelines vs NumPy.

Each fuzz case builds a random pipeline of library operations (TTM along
random modes, unfold/fold round-trips, layout conversions, sparsify/
densify) and shadows every step with plain NumPy.  The pipelines cross
module boundaries the unit tests exercise separately, hunting for
interaction bugs (layout leaks, stale views, convention mismatches).
"""

import dataclasses

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

import repro
from repro.core.inttm import default_plan, ttm_inplace
from repro.obs import assert_spans_well_nested, tracing
from repro.sparse import SparseTensor
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.tensor.unfold import fold, unfold
from repro.testing import DTYPE_TOLERANCES
from repro.util.errors import PlanError
from tests.helpers import ttm_oracle


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
    n_steps=st.integers(1, 5),
    data=st.data(),
)
def test_fuzz_ttm_pipelines(shape, n_steps, data):
    """A chain of random TTMs through random backends equals the oracle."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    x = DenseTensor(rng.standard_normal(shape), layout)
    shadow = x.data.copy()
    current = x
    for _ in range(n_steps):
        mode = data.draw(st.integers(0, current.order - 1))
        j = data.draw(st.integers(1, 5))
        u = rng.standard_normal((j, current.shape[mode]))
        backend = data.draw(
            st.sampled_from(["inplace", "copy", "facade"])
        )
        if backend == "inplace":
            current = ttm_inplace(current, u, mode)
        elif backend == "copy":
            current = repro.ttm_copy(current, u, mode)
        else:
            current = repro.ttm(current, u, mode)
        shadow = ttm_oracle(shadow, u, mode)
        assert current.shape == shadow.shape
    assert np.allclose(current.data, shadow, atol=1e-9 * max(1.0, np.abs(shadow).max()))


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(0, 5), min_size=1, max_size=4),
    data=st.data(),
)
def test_fuzz_dtype_and_degenerate_geometry(shape, data):
    """Random element types (incl. float16's blocked-kernel fallback) and
    zero-extent shapes preserve dtype and match the float64 oracle."""
    dtype = data.draw(st.sampled_from(["float64", "float32", "float16"]))
    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    mode = data.draw(st.integers(0, len(shape) - 1))
    j = data.draw(st.integers(1, 5))
    x = DenseTensor(rng.standard_normal(shape), layout, dtype=dtype)
    u = rng.standard_normal((j, shape[mode])).astype(dtype)
    y = ttm_inplace(x, u, mode)
    assert y.dtype == np.dtype(dtype)
    expect = ttm_oracle(x.data.astype(np.float64), u.astype(np.float64), mode)
    assert y.shape == expect.shape
    rtol, atol = DTYPE_TOLERANCES[dtype]
    scale = max(1.0, float(np.abs(expect).max())) if expect.size else 1.0
    assert np.allclose(
        y.data.astype(np.float64), expect, rtol=rtol, atol=atol * scale
    )


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(0, 5), min_size=1, max_size=5),
    data=st.data(),
)
def test_fuzz_unfold_fold_layout_roundtrips(shape, data):
    """Random sequences of unfold/fold and layout flips preserve values."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    x = DenseTensor(rng.standard_normal(shape), layout)
    reference = x.data.copy()
    current = x
    for _ in range(data.draw(st.integers(1, 4))):
        op = data.draw(st.sampled_from(["roundtrip", "relayout", "copy"]))
        if op == "roundtrip":
            mode = data.draw(st.integers(0, current.order - 1))
            current = fold(
                unfold(current, mode), mode, current.shape, current.layout
            )
        elif op == "relayout":
            target = (
                COL_MAJOR if current.layout is ROW_MAJOR else ROW_MAJOR
            )
            current = current.with_layout(target)
        else:
            current = current.copy()
    assert np.allclose(current.data, reference)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
    data=st.data(),
)
def test_fuzz_sparse_dense_ttm_agree(shape, data):
    """Sparsify -> sparse TTM -> densify equals dense TTM on the same data."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    density = data.draw(st.floats(0.05, 0.6))
    dense = np.where(
        rng.random(shape) < density, rng.standard_normal(shape), 0.0
    )
    mode = data.draw(st.integers(0, len(shape) - 1))
    j = data.draw(st.integers(1, 4))
    u = rng.standard_normal((j, shape[mode]))
    from repro.sparse import ttm_sparse

    sparse_result = ttm_sparse(SparseTensor.from_dense(dense), u, mode)
    dense_result = ttm_inplace(DenseTensor(dense), u, mode)
    assert np.allclose(sparse_result.to_dense().data, dense_result.data)


def _draw_batched_plan(shape, data):
    """A random legal plan with a randomized degree and batch run.

    Draws the degree from the plan space and then retargets the batch to
    a random suffix of the loop modes; combinations the plan validator
    rejects (non-consecutive or unstackable runs) are discarded via
    ``assume`` so Hypothesis keeps exploring the legal space.
    """
    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    mode = data.draw(st.integers(0, len(shape) - 1))
    j = data.draw(st.integers(1, 5))
    base = default_plan(shape, mode, j, layout, batched=True)
    max_degree = max(base.degree, 1)
    degree = data.draw(st.integers(1, max_degree)) if base.degree else None
    plan = default_plan(shape, mode, j, layout, degree=degree, batched=True)
    batch_len = data.draw(st.integers(0, len(plan.loop_modes)))
    batch = tuple(sorted(plan.loop_modes[len(plan.loop_modes) - batch_len:]))
    if batch != plan.batch_modes:
        try:
            plan = dataclasses.replace(plan, batch_modes=batch)
        except PlanError:
            assume(False)  # not a consecutive/stackable run: skip
    return plan


@settings(max_examples=40, deadline=None)
@given(
    shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
    data=st.data(),
)
def test_fuzz_batched_plans_match_unbatched_and_oracle(shape, data):
    """Random batched plans = the per-iteration interpreter = equation 1."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    plan = _draw_batched_plan(shape, data)
    x = DenseTensor(rng.standard_normal(shape), plan.layout)
    u = rng.standard_normal((plan.j, shape[plan.mode]))

    batched = ttm_inplace(x, u, plan=plan)
    unbatched_plan = dataclasses.replace(plan, batch_modes=())
    unbatched = ttm_inplace(x, u, plan=unbatched_plan)
    expect = ttm_oracle(x.data, u, plan.mode)
    tol = 1e-9 * max(1.0, float(np.abs(expect).max()))
    assert np.allclose(batched.data, unbatched.data, atol=tol)
    assert np.allclose(batched.data, expect, atol=tol)


@settings(max_examples=30, deadline=None)
@given(
    shape=st.lists(st.integers(2, 4), min_size=2, max_size=4),
    data=st.data(),
)
def test_fuzz_traced_execution_emits_well_nested_spans(shape, data):
    """Any random plan, traced, yields a clean span tree (no orphans or
    partial overlaps) containing the execute -> gemm-kernel chain."""
    rng = np.random.default_rng(data.draw(st.integers(0, 2**31)))
    plan = _draw_batched_plan(shape, data)
    x = DenseTensor(rng.standard_normal(shape), plan.layout)
    u = rng.standard_normal((plan.j, shape[plan.mode]))
    threads = data.draw(st.sampled_from([1, 2]))
    plan = dataclasses.replace(plan, loop_threads=threads)

    with tracing() as tracer:
        y = ttm_inplace(x, u, plan=plan)
    assert y.shape == plan.out_shape
    spans = tracer.collector.spans()
    assert_spans_well_nested(spans)
    names = {s.name for s in spans}
    assert "execute" in names
    assert "gemm-kernel" in names
    # Nothing may leak outside the tracing block.
    from repro.obs import active_tracer, NULL_TRACER

    assert active_tracer() is NULL_TRACER


@settings(max_examples=25, deadline=None)
@given(
    shape=st.lists(st.integers(2, 4), min_size=2, max_size=4),
    data=st.data(),
)
def test_fuzz_views_never_alias_wrong_elements(shape, data):
    """Writing through a random merged view changes exactly the selected
    elements of the base tensor and nothing else."""
    from repro.tensor.views import merged_matrix_view

    layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    x = DenseTensor.zeros(shape, layout)
    ndim = len(shape)
    mode = data.draw(st.integers(0, ndim - 1))
    # Natural-side merge for the layout.
    if layout is ROW_MAJOR:
        comp = tuple(range(mode + 1, ndim))
    else:
        comp = tuple(range(0, mode))
    if not comp:
        return
    loops = [m for m in range(ndim) if m != mode and m not in comp]
    fixed = {m: data.draw(st.integers(0, shape[m] - 1)) for m in loops}
    view = (
        merged_matrix_view(x, (mode,), comp, fixed)
        if layout is ROW_MAJOR
        else merged_matrix_view(x, comp, (mode,), fixed)
    )
    view[...] = 1.0
    touched = int(np.count_nonzero(x.data))
    assert touched == view.size
    # Every touched element carries the loop modes' fixed indices.
    nz = np.argwhere(x.data == 1.0)
    for m, idx in fixed.items():
        assert np.all(nz[:, m] == idx)
