"""Correctness tests for the in-place executor (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.inttm import default_plan, ttm_inplace
from repro.core.plan import Strategy
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import PlanError, ShapeError
from tests.helpers import TTM_CASES, ttm_oracle


class TestAgainstOracle:
    @pytest.mark.parametrize("shape,j,mode", TTM_CASES)
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_matches_equation_1(self, shape, j, mode, layout):
        rng = np.random.default_rng(hash((shape, j, mode)) % 2**32)
        x = DenseTensor(rng.standard_normal(shape), layout)
        u = rng.standard_normal((j, shape[mode]))
        y = ttm_inplace(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))
        assert y.layout is layout

    @pytest.mark.parametrize("degree", [0, 1, 2, 3])
    def test_every_degree_agrees(self, degree):
        rng = np.random.default_rng(7)
        shape, j, mode = (4, 5, 3, 2, 3), 2, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR, degree=degree)
        y = ttm_inplace(x, u, plan=plan)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @pytest.mark.parametrize("kernel", ["auto", "blas", "blocked"])
    def test_every_kernel_agrees(self, kernel):
        rng = np.random.default_rng(8)
        shape, j, mode = (6, 7, 8), 3, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(shape, mode, j, ROW_MAJOR, kernel=kernel)
        y = ttm_inplace(x, u, plan=plan)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @pytest.mark.parametrize("p_l,p_c", [(2, 1), (1, 2), (3, 2)])
    def test_threaded_execution_agrees(self, p_l, p_c):
        rng = np.random.default_rng(9)
        shape, j, mode = (6, 5, 4, 3), 2, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        plan = default_plan(
            shape, mode, j, ROW_MAJOR, loop_threads=p_l, kernel_threads=p_c
        )
        y = ttm_inplace(x, u, plan=plan)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.lists(st.integers(1, 5), min_size=1, max_size=5),
        j=st.integers(1, 6),
        data=st.data(),
    )
    def test_property_random_geometry(self, shape, j, data):
        mode = data.draw(st.integers(0, len(shape) - 1))
        layout = data.draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
        rng = np.random.default_rng(42)
        x = DenseTensor(rng.standard_normal(shape), layout)
        u = rng.standard_normal((j, shape[mode]))
        y = ttm_inplace(x, u, mode)
        assert np.allclose(y.data, ttm_oracle(x.data, u, mode))


class TestInPlaceSemantics:
    def test_writes_into_provided_out(self):
        rng = np.random.default_rng(10)
        shape, j, mode = (4, 5, 6), 3, 1
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        out = DenseTensor.zeros((4, 3, 6), ROW_MAJOR)
        buffer_before = out.data
        result = ttm_inplace(x, u, mode, out=out)
        assert result is out
        assert result.data is buffer_before

    def test_input_tensor_unchanged(self):
        rng = np.random.default_rng(11)
        x = DenseTensor(rng.standard_normal((4, 5, 6)), ROW_MAJOR)
        snapshot = x.data.copy()
        u = rng.standard_normal((2, 5))
        ttm_inplace(x, u, 1)
        assert np.array_equal(x.data, snapshot)

    def test_no_tensor_sized_temporaries(self):
        """The executor must not materialize a matricized copy of X.

        We verify indirectly but sharply: run with tracemalloc and assert
        the peak extra allocation stays far below |X| (a copy-based
        implementation allocates >= |X| for X_mat).
        """
        import tracemalloc

        rng = np.random.default_rng(12)
        shape, j, mode = (48, 48, 48), 4, 1  # X is ~884 KB
        x = DenseTensor(rng.standard_normal(shape), ROW_MAJOR)
        u = rng.standard_normal((j, shape[mode]))
        out = DenseTensor.empty((48, 4, 48), ROW_MAJOR)
        ttm_inplace(x, u, mode, out=out)  # warm up
        tracemalloc.start()
        ttm_inplace(x, u, mode, out=out)
        _current, peak = tracemalloc.get_traced_memory()
        tracemalloc.stop()
        assert peak < x.nbytes / 4


class TestValidation:
    def test_requires_plan_or_mode(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(PlanError):
            ttm_inplace(x, np.zeros((2, 3)))

    def test_rejects_plain_ndarray_input(self):
        with pytest.raises(TypeError):
            ttm_inplace(np.zeros((3, 4)), np.zeros((2, 3)), 0)

    def test_u_shape_mismatch(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(ShapeError):
            ttm_inplace(x, np.zeros((2, 5)), 0)

    def test_u_must_be_2d(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(ShapeError):
            ttm_inplace(x, np.zeros(3), 0)

    def test_plan_input_mismatch(self):
        x = DenseTensor.zeros((3, 4))
        plan = default_plan((5, 4), 0, 2, ROW_MAJOR)
        with pytest.raises(PlanError):
            ttm_inplace(x, np.zeros((2, 5)), plan=plan)

    def test_out_shape_mismatch(self):
        x = DenseTensor.zeros((3, 4))
        out = DenseTensor.zeros((3, 3))
        with pytest.raises(PlanError):
            ttm_inplace(x, np.zeros((2, 4)), 1, out=out)

    def test_out_layout_mismatch(self):
        x = DenseTensor.zeros((3, 4), ROW_MAJOR)
        out = DenseTensor.zeros((3, 2), COL_MAJOR)
        with pytest.raises(PlanError):
            ttm_inplace(x, np.zeros((2, 4)), 1, out=out)

    def test_out_must_be_dense_tensor(self):
        x = DenseTensor.zeros((3, 4))
        with pytest.raises(TypeError):
            ttm_inplace(x, np.zeros((2, 4)), 1, out=np.zeros((3, 2)))


class TestDefaultPlan:
    def test_maximal_merge_row_major(self):
        plan = default_plan((4, 5, 6, 7), 1, 3, ROW_MAJOR)
        assert plan.component_modes == (2, 3)
        assert plan.loop_modes == (0,)
        assert plan.strategy is Strategy.FORWARD

    def test_maximal_merge_col_major(self):
        plan = default_plan((4, 5, 6, 7), 2, 3, COL_MAJOR)
        assert plan.component_modes == (0, 1)
        assert plan.loop_modes == (3,)
        assert plan.strategy is Strategy.BACKWARD

    def test_last_mode_row_major_flips_to_backward(self):
        plan = default_plan((4, 5, 6), 2, 3, ROW_MAJOR)
        assert plan.strategy is Strategy.BACKWARD
        assert plan.component_modes == (0, 1)
        assert plan.loop_modes == ()

    def test_first_mode_col_major_flips_to_forward(self):
        plan = default_plan((4, 5, 6), 0, 3, COL_MAJOR)
        assert plan.strategy is Strategy.FORWARD
        assert plan.component_modes == (1, 2)

    def test_order1_has_no_components_either_way(self):
        plan = default_plan((7,), 0, 3, ROW_MAJOR)
        assert plan.component_modes == ()
        assert plan.loop_modes == ()

    def test_explicit_degree(self):
        plan = default_plan((4, 5, 6, 7), 0, 3, ROW_MAJOR, degree=2)
        assert plan.component_modes == (2, 3)
        assert plan.loop_modes == (1,)
