"""The out-of-core tiling layer: planner, tiled executor, streaming API.

Three invariants anchor this module:

1. **Exactness** — a tiled TTM partitions the non-contracted index space,
   so tiled == untiled == the equation-(1) oracle bit-for-bit in shape
   and allclose in value, for every geometry, layout, and dtype.
2. **Boundedness** — per-tile transient allocations (kernel working set
   plus any packing scratch) never exceed the budget the planner was
   given; measured through the fault injector's passive ``observe`` log,
   not by monkeypatching NumPy.
3. **Determinism** — the tiling decision for a signature is a pure
   function of (shape, mode, J, layout, dtype, budget); the golden
   fixture ``tests/golden/tiling_plans.json`` pins it (regenerate with
   ``--regen-golden`` when a change is intentional).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro
from repro.core.intensli import InTensLi
from repro.core.inttm import default_plan
from repro.core.tiling import (
    TilingPlanner,
    execute_tiled,
    explain_tiling,
    tiling_opportunity,
    ttm_stream,
    ttm_stream_collect,
    ttm_tiled,
    view_tileable,
)
from repro.obs.tracer import tracing
from repro.perf.profiler import track_hot_path
from repro.resilience import fault_injection
from repro.resilience.memory import (
    MEM_LIMIT_ENV,
    pinned_budget,
    plan_footprint_bytes,
)
from repro.tensor.dense import DenseTensor, open_memmap_tensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.testing import DEFAULT_CASES, DTYPE_TOLERANCES
from repro.util.errors import DtypeError, ResourceError, ShapeError
from tests.helpers import ttm_oracle

GOLDEN_PATH = Path(__file__).parent / "golden" / "tiling_plans.json"

#: Byte budgets the golden fixture pins decisions at: one that forces
#: deep tiling on most of the grid, one most cases fit inside.
GOLDEN_BUDGETS = (2048, 32768)


def _case_arrays(shape, j, mode, layout=ROW_MAJOR, dtype="float64", seed=0):
    rng = np.random.default_rng(seed)
    x = DenseTensor(
        rng.standard_normal(shape).astype(dtype), layout, dtype=dtype
    )
    u = rng.standard_normal((j, shape[mode])).astype(dtype)
    return x, u


def _min_tile_budget(shape, mode, j, layout, dtype="float64"):
    """The footprint of a maximally tiled cut — the smallest budget that
    is still tileable, so planning against it forces the deepest split."""
    base = default_plan(shape, mode, j, layout, dtype=dtype)
    parts = [1 if m == mode else max(1, e) for m, e in enumerate(shape)]
    foot, _ = TilingPlanner()._tile_footprint(base, parts)
    return foot


# -- the planner ---------------------------------------------------------------


def test_plan_is_trivial_when_budget_suffices():
    base = default_plan((6, 7, 8), 1, 4, ROW_MAJOR)
    for budget in (None, 1 << 30):
        tiling = TilingPlanner().plan(base, budget=budget)
        assert not tiling.tiled and tiling.n_tiles == 1
        assert tiling.reason == "fits-in-budget"
        assert tiling.parts == (1, 1, 1)


def test_plan_never_splits_the_contracted_mode():
    for mode in range(3):
        shape = (16, 16, 16)
        budget = _min_tile_budget(shape, mode, 4, ROW_MAJOR)
        base = default_plan(shape, mode, 4, ROW_MAJOR)
        tiling = TilingPlanner().plan(base, budget=budget,
                                      out_preallocated=True)
        assert tiling.parts[mode] == 1
        assert tiling.tiled


def test_plan_prefers_outermost_storage_mode():
    # When the contracted mode is the trailing one, the component window
    # spans the leading modes, so splitting the outermost storage mode
    # both shrinks the kernel working set AND keeps tiles contiguous
    # views — a gentle squeeze must stop there, never split inward.
    shape = (32, 16, 16)
    base = default_plan(shape, 2, 4, ROW_MAJOR)
    need = plan_footprint_bytes(base, allocate_out=False)
    tiling = TilingPlanner().plan(base, budget=need - 1,
                                  out_preallocated=True)
    assert tiling.tiled and not tiling.packed
    assert tiling.parts[0] > 1
    assert tiling.parts[1] == 1 and tiling.parts[2] == 1
    # Column-major mirrors: the outermost storage mode is the last axis.
    base_f = default_plan(shape, 0, 4, COL_MAJOR)
    need_f = plan_footprint_bytes(base_f, allocate_out=False)
    tiling_f = TilingPlanner().plan(base_f, budget=need_f - 1,
                                    out_preallocated=True)
    assert tiling_f.tiled and not tiling_f.packed
    assert tiling_f.parts[2] > 1
    assert tiling_f.parts[0] == 1 and tiling_f.parts[1] == 1


def test_plan_output_dominates_reason():
    # Transients fit; only the output allocation overflows the budget.
    shape = (8, 64, 64)
    base = default_plan(shape, 1, 32, ROW_MAJOR)
    transient = plan_footprint_bytes(base, allocate_out=False)
    total = plan_footprint_bytes(base, allocate_out=True)
    assert total > transient
    tiling = TilingPlanner().plan(base, budget=transient)
    assert not tiling.tiled
    assert tiling.reason == "output-dominates"


def test_untileable_budget_raises_typed_error():
    base = default_plan((8, 8, 8), 1, 4, ROW_MAJOR)
    with pytest.raises(ResourceError, match="cannot be tiled"):
        TilingPlanner().plan(base, budget=16, out_preallocated=True)


def test_tiles_partition_the_index_space():
    shape = (5, 6, 7)
    budget = _min_tile_budget(shape, 1, 3, ROW_MAJOR)
    base = default_plan(shape, 1, 3, ROW_MAJOR)
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    cover = np.zeros(shape, dtype=np.int64)
    for spec in tiling.tiles():
        cover[spec.in_slices] += 1
    assert (cover == 1).all(), "tiles must cover every index exactly once"
    assert sum(1 for _ in tiling.tiles()) == tiling.n_tiles


def test_view_tileable_predicate():
    assert view_tileable((4, 1, 1), (8, 8, 8), 1, ROW_MAJOR)
    assert not view_tileable((4, 1, 1), (8, 8, 8), 0, ROW_MAJOR)  # outer==mode
    assert not view_tileable((1, 2, 1), (8, 8, 8), 0, ROW_MAJOR)  # inner split
    assert view_tileable((1, 1, 4), (8, 8, 8), 1, COL_MAJOR)
    assert not view_tileable((4, 1, 1), (8, 8, 8), 1, COL_MAJOR)
    assert view_tileable((1, 1, 1), (8, 8, 8), 0, ROW_MAJOR)  # no split at all


def test_tiling_opportunity_fast_path_and_engagement(monkeypatch):
    monkeypatch.delenv(MEM_LIMIT_ENV, raising=False)
    plan = default_plan((4, 5, 6), 1, 3, ROW_MAJOR)
    # Small, in-memory, no cap: never probes, never engages.
    assert tiling_opportunity(plan) is None
    # A tight explicit cap engages and reports the budget.
    monkeypatch.setenv(MEM_LIMIT_ENV, "128")
    assert tiling_opportunity(plan) == 128
    # A preallocated output shrinks the need to kernel working sets only.
    monkeypatch.setenv(MEM_LIMIT_ENV, str(1 << 30))
    assert tiling_opportunity(plan, out_given=True) is None


# -- tiled execution vs the oracle ---------------------------------------------


@pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_tiled_matches_untiled_and_oracle_everywhere(layout, dtype):
    """Invariant 1 over the full grid, at the deepest feasible tiling."""
    rtol, atol = DTYPE_TOLERANCES[dtype]
    failures = []
    for shape, j, mode in DEFAULT_CASES:
        x, u = _case_arrays(shape, j, mode, layout, dtype)
        budget = _min_tile_budget(shape, mode, j, layout, dtype)
        out = DenseTensor.empty(
            shape[:mode] + (j,) + shape[mode + 1:], layout, dtype=dtype
        )
        got = ttm_tiled(x, u, mode, budget=budget, out=out)
        untiled = repro.ttm(x, u, mode)
        oracle = ttm_oracle(
            x.data.astype(np.float64), u.astype(np.float64), mode
        )
        label = f"shape={shape} J={j} mode={mode} {layout.name}/{dtype}"
        if not np.allclose(got.data.astype(np.float64), oracle,
                           rtol=rtol, atol=atol):
            failures.append(f"{label}: tiled != oracle")
        if not np.allclose(got.data, untiled.data, rtol=rtol, atol=atol):
            failures.append(f"{label}: tiled != untiled")
    assert not failures, "\n".join(failures)


@pytest.mark.parametrize("mode,expect_packed", [(2, False), (0, True)])
def test_tiled_view_and_packed_paths(mode, expect_packed):
    # Row-major, mode 2: axis-0 tiles are views of X and Y and shrink
    # the backward kernel; mode 0: only inner splits help, so tiles are
    # staged through the scratch pool.
    shape, j = (12, 10, 8), 4
    x, u = _case_arrays(shape, j, mode)
    base = default_plan(shape, mode, j, ROW_MAJOR)
    budget = plan_footprint_bytes(base, allocate_out=False) // 2
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    assert tiling.packed is expect_packed
    out = DenseTensor.empty(tiling.out_shape, ROW_MAJOR)
    with track_hot_path() as counters:
        got = execute_tiled(x, u, tiling, out=out)
    np.testing.assert_allclose(
        got.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )
    assert counters.tiled_ttms == 1
    assert counters.tiles_executed == tiling.n_tiles
    assert (counters.tile_pack_bytes > 0) is expect_packed


def test_execute_tiled_validates_inputs():
    x, u = _case_arrays((6, 7, 8), 3, 1)
    base = default_plan((6, 7, 8), 1, 3, ROW_MAJOR)
    tiling = TilingPlanner().plan(base, budget=1 << 30)
    with pytest.raises(ShapeError, match="tiling is for"):
        execute_tiled(DenseTensor.zeros((6, 7, 9)), u, tiling)
    with pytest.raises(DtypeError, match="tiling is for dtype"):
        execute_tiled(
            DenseTensor.zeros((6, 7, 8), dtype="float32"), u, tiling
        )
    with pytest.raises(ShapeError, match="U shape"):
        execute_tiled(x, np.ones((3, 9)), tiling)
    with pytest.raises(ShapeError, match="out is"):
        execute_tiled(x, u, tiling, out=DenseTensor.zeros((6, 4, 8)))


def test_in_ram_output_refused_when_over_budget(tmp_path):
    # Budget below the output size and no disk destination: typed error.
    shape, j, mode = (8, 16, 16), 8, 1
    x, u = _case_arrays(shape, j, mode)
    budget = _min_tile_budget(shape, mode, j, ROW_MAJOR)
    base = default_plan(shape, mode, j, ROW_MAJOR)
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    out_bytes = 8 * 8 * j * 16
    assert out_bytes > budget
    with pytest.raises(ResourceError, match="out_path"):
        execute_tiled(x, u, tiling)
    # The same call lands on disk when given somewhere to write.
    y = execute_tiled(x, u, tiling, out_path=tmp_path / "y.npy")
    assert not y.is_inmem
    np.testing.assert_allclose(
        y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )


def test_tile_spans_annotate_the_trace():
    shape, j, mode = (8, 6, 6), 3, 1
    x, u = _case_arrays(shape, j, mode)
    budget = _min_tile_budget(shape, mode, j, ROW_MAJOR)
    with tracing() as tracer:
        out = DenseTensor.empty((8, 3, 6), ROW_MAJOR)
        ttm_tiled(x, u, mode, budget=budget, out=out)
    names = [s.name for s in tracer.collector.spans()]
    assert "tile-plan" in names
    assert names.count("tile-exec") >= 2
    plan_span = next(
        s for s in tracer.collector.spans() if s.name == "tile-plan"
    )
    assert plan_span.attrs["n_tiles"] >= 2


# -- the acceptance case: tensor larger than the budget ------------------------


def test_memmap_ttm_larger_than_budget_matches_oracle(tmp_path, monkeypatch):
    """ISSUE 8 acceptance: a mode-1 TTM over a memmap-backed tensor with
    nbytes far above $REPRO_MEM_LIMIT completes through the transparent
    facade path, matches the in-memory oracle, and never allocates a
    transient above the budget."""
    shape, j, mode = (32, 128, 512), 16, 1  # 16 MiB of float64
    budget = 512 << 10  # below even one slab's kernel working set
    monkeypatch.setenv(MEM_LIMIT_ENV, str(budget))
    x = open_memmap_tensor(tmp_path / "x.npy", "w+", shape=shape)
    rng = np.random.default_rng(7)
    for i in range(shape[0]):  # fill in slabs, never the whole array
        x.data[i] = rng.standard_normal(shape[1:])
    x.flush()
    assert x.nbytes > 16 * budget and not x.is_inmem
    u = rng.standard_normal((j, shape[mode]))
    # The output (2 MiB) exceeds the budget too, so it lives on disk.
    out = open_memmap_tensor(
        tmp_path / "y.npy", "w+", shape=(shape[0], j, shape[2])
    )

    with fault_injection() as faults, track_hot_path() as counters:
        y = repro.ttm(x, u, mode, out=out)

    assert counters.tiled_ttms == 1
    assert counters.tiles_executed > 1
    # Invariant 2: every instrumented transient stayed under the budget.
    for obs in faults.observations("alloc"):
        assert obs["pool_nbytes"] + obs["kernel_ws"] <= budget, obs
    oracle = ttm_oracle(np.asarray(x.data), u, mode)
    np.testing.assert_allclose(y.data, oracle, rtol=1e-10, atol=1e-10)


def test_memmap_in_memmap_out_end_to_end(tmp_path, monkeypatch):
    # Disk to disk: neither operand nor result ever fully in RAM.
    shape, j, mode = (24, 64, 256), 48, 0
    budget = 512 << 10
    monkeypatch.setenv(MEM_LIMIT_ENV, str(budget))
    x = open_memmap_tensor(tmp_path / "x.npy", "w+", shape=shape)
    rng = np.random.default_rng(3)
    for i in range(shape[0]):
        x.data[i] = rng.standard_normal(shape[1:])
    x.flush()
    u = rng.standard_normal((j, shape[mode]))
    y = ttm_tiled(x, u, mode, out_path=tmp_path / "y.npy")
    assert not y.is_inmem
    assert y.shape == (j,) + shape[1:]
    reopened = open_memmap_tensor(tmp_path / "y.npy", "r")
    np.testing.assert_allclose(
        np.asarray(reopened.data),
        ttm_oracle(np.asarray(x.data), u, mode),
        rtol=1e-10, atol=1e-10,
    )


def test_facade_engagement_is_transparent_and_bounded(monkeypatch):
    # An in-RAM tensor whose kernel working set exceeds the cap engages
    # tiling inside InTensLi.ttm with no API change; the result is
    # still oracle-exact.
    shape, j, mode = (16, 64, 128), 8, 1
    x, u = _case_arrays(shape, j, mode)
    lib = InTensLi(max_threads=1)
    ws = plan_footprint_bytes(
        lib.plan(shape, mode, j, ROW_MAJOR), allocate_out=False
    )
    monkeypatch.setenv(MEM_LIMIT_ENV, str(ws // 2))
    out = DenseTensor.empty((16, j, 128), ROW_MAJOR)
    with track_hot_path() as counters:
        y = repro.ttm(x, u, mode, out=out)
    assert counters.tiled_ttms == 1
    assert y is out
    np.testing.assert_allclose(
        y.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )


def test_chain_steps_tile_individually(monkeypatch):
    # InTensLi.ttm_chain runs each step through InTensLi.execute, so
    # per-step tiling engages with no chain-level wiring.
    shape = (12, 16, 20)
    rng = np.random.default_rng(5)
    x = DenseTensor(rng.standard_normal(shape))
    us = [rng.standard_normal((6, shape[1])), rng.standard_normal((5, shape[2]))]
    expect = ttm_oracle(ttm_oracle(x.data, us[0], 1), us[1], 2)
    lib = InTensLi(max_threads=1)
    # Budget below the widest executed step plan's working set — the step
    # plans come from plan_chain, not from fresh single-TTM planning.
    cp = lib.plan_chain(shape, [(1, 6), (2, 5)], ROW_MAJOR)
    budget = max(
        plan_footprint_bytes(p, allocate_out=False) for p in cp.step_plans
    ) - 1
    monkeypatch.setenv(MEM_LIMIT_ENV, str(budget))
    with track_hot_path() as counters:
        y = lib.ttm_chain(x, [(1, us[0]), (2, us[1])])
    assert counters.tiled_ttms >= 1
    np.testing.assert_allclose(y.data, expect, rtol=1e-10, atol=1e-12)


# -- hypothesis fuzz: coverage, exactness, boundedness -------------------------


@st.composite
def _tiling_case(draw):
    shape = tuple(draw(st.lists(st.integers(1, 12), min_size=2, max_size=4)))
    mode = draw(st.integers(0, len(shape) - 1))
    j = draw(st.integers(1, 6))
    layout = draw(st.sampled_from([ROW_MAJOR, COL_MAJOR]))
    slack = draw(st.integers(0, 2))  # 1x, 2x, 4x the minimal budget
    return shape, mode, j, layout, slack


@settings(max_examples=40, deadline=None)
@given(case=_tiling_case(), seed=st.integers(0, 3))
def test_fuzz_tiled_is_exact_and_bounded(case, seed):
    shape, mode, j, layout, slack = case
    budget = _min_tile_budget(shape, mode, j, layout) << slack
    x, u = _case_arrays(shape, j, mode, layout, seed=seed)
    base = default_plan(shape, mode, j, layout)
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    assert tiling.parts[mode] == 1
    cover = np.zeros(shape, dtype=np.int64)
    for spec in tiling.tiles():
        cover[spec.in_slices] += 1
    assert (cover == 1).all()
    out = DenseTensor.empty(tiling.out_shape, layout)
    with fault_injection() as faults:
        got = execute_tiled(x, u, tiling, out=out)
    for obs in faults.observations("alloc"):
        assert obs["pool_nbytes"] + obs["kernel_ws"] <= budget, obs
    np.testing.assert_allclose(
        got.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )


# -- streaming -----------------------------------------------------------------


def _chunked(arr, axis, pieces=3):
    extent = arr.shape[axis]
    step = max(1, -(-extent // pieces))
    for lo in range(0, extent, step):
        yield np.take(arr, range(lo, min(extent, lo + step)), axis=axis)


@pytest.mark.parametrize("dtype", ["float64", "float32"])
def test_stream_equals_one_shot_everywhere(dtype):
    """ISSUE 8 acceptance: ttm_stream over incremental slices equals the
    one-shot product for all DEFAULT_CASES, both stream regimes."""
    rtol, atol = DTYPE_TOLERANCES[dtype]
    failures = []
    for shape, j, mode in DEFAULT_CASES:
        x, u = _case_arrays(shape, j, mode, ROW_MAJOR, dtype)
        want = repro.ttm(x, u, mode)
        for axis in range(len(shape)):
            got = ttm_stream_collect(_chunked(x.data, axis), u, mode,
                                     axis=axis)
            label = f"shape={shape} J={j} mode={mode} axis={axis} {dtype}"
            if got.shape != want.shape:
                failures.append(f"{label}: shape {got.shape} != {want.shape}")
            elif not np.allclose(got.data, want.data, rtol=rtol, atol=atol):
                failures.append(f"{label}: values diverge")
    assert not failures, "\n".join(failures)


def test_stream_yields_incrementally_when_axis_differs_from_mode():
    shape, j, mode = (9, 6, 5), 3, 1
    x, u = _case_arrays(shape, j, mode)
    with track_hot_path() as counters:
        chunks = list(ttm_stream(_chunked(x.data, 0, pieces=3), u, mode))
    assert len(chunks) == 3 and counters.stream_chunks == 3
    assert [(c.lo, c.hi) for c in chunks] == [(0, 3), (3, 6), (6, 9)]
    assembled = np.concatenate([c.data.data for c in chunks], axis=0)
    np.testing.assert_allclose(
        assembled, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )


def test_stream_accumulates_when_axis_is_the_contracted_mode():
    shape, j, mode = (7, 10, 4), 5, 1
    x, u = _case_arrays(shape, j, mode)
    chunks = list(ttm_stream(_chunked(x.data, mode, pieces=4), u, mode,
                             axis=mode))
    assert len(chunks) == 1  # partial sums withheld, one final result
    assert (chunks[0].lo, chunks[0].hi) == (0, j)
    np.testing.assert_allclose(
        chunks[0].data.data, ttm_oracle(x.data, u, mode),
        rtol=1e-10, atol=1e-12,
    )


def test_stream_error_contracts():
    u = np.ones((2, 4))
    with pytest.raises(ShapeError, match="empty stream"):
        list(ttm_stream([], u, 0))
    ragged = [np.ones((2, 4)), np.ones((2, 5))]  # non-axis extents drift
    with pytest.raises(ShapeError, match="non-axis extents"):
        list(ttm_stream(ragged, u, 1, axis=0))
    # axis == mode with incomplete coverage: the partial sum is withheld.
    with pytest.raises(ShapeError, match="partial result withheld"):
        list(ttm_stream([np.ones((3, 5))], u, 0, axis=0))
    # Float dtype mismatches are rejected, never silently converted.
    with pytest.raises(DtypeError, match="cast U explicitly"):
        list(ttm_stream([np.ones((4, 3), dtype=np.float32)], u, 0, axis=1))


def test_facade_stream_uses_the_estimator_planner():
    shape, j, mode = (8, 6, 10), 4, 2
    x, u = _case_arrays(shape, j, mode)
    lib = InTensLi(max_threads=1)
    got = list(lib.ttm_stream(_chunked(x.data, 0), u, mode))
    assembled = np.concatenate([c.data.data for c in got], axis=0)
    np.testing.assert_allclose(
        assembled, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )


# -- golden tiling decisions ---------------------------------------------------


def _decision_key(shape, mode, j, layout, budget):
    dims = "x".join(str(s) for s in shape)
    return f"{dims}|m{mode}|J{j}|{layout.name}|B{budget}"


def _compute_tiling_decisions() -> dict[str, dict]:
    """Today's tiling decision for the whole golden grid.

    Deterministic on every host: the default planner and the footprint
    model involve no measurement, and the budget is explicit.
    """
    planner = TilingPlanner()
    decisions: dict[str, dict] = {}
    for layout in (ROW_MAJOR, COL_MAJOR):
        for budget in GOLDEN_BUDGETS:
            for shape, j, mode in DEFAULT_CASES:
                base = default_plan(shape, mode, j, layout)
                key = _decision_key(shape, mode, j, layout, budget)
                try:
                    tiling = planner.plan(base, budget=budget,
                                          out_preallocated=True)
                except ResourceError:
                    decisions[key] = {"untileable": True}
                    continue
                d = tiling.to_dict()
                decisions[key] = {
                    "parts": d["parts"],
                    "n_tiles": d["n_tiles"],
                    "max_tile_shape": d["max_tile_shape"],
                    "packed": d["packed"],
                    "reason": d["reason"],
                    "tile_footprint_bytes": d["tile_footprint_bytes"],
                }
    return decisions


def test_golden_tiling_decisions_match_fixture(request):
    decisions = _compute_tiling_decisions()
    if request.config.getoption("--regen-golden"):
        GOLDEN_PATH.parent.mkdir(exist_ok=True)
        GOLDEN_PATH.write_text(
            json.dumps(decisions, indent=2, sort_keys=True) + "\n"
        )
        pytest.skip(f"regenerated {GOLDEN_PATH}")
    assert GOLDEN_PATH.exists(), (
        f"golden fixture {GOLDEN_PATH} is missing; generate it with "
        "`python -m pytest tests/test_tiling.py --regen-golden` and commit it"
    )
    golden = json.loads(GOLDEN_PATH.read_text())
    diffs = []
    for key in sorted(set(golden) | set(decisions)):
        want, got = golden.get(key), decisions.get(key)
        if want != got:
            diffs.append(f"{key}: {want!r} -> {got!r}")
    if diffs:
        detail = "\n  ".join(diffs)
        pytest.fail(
            f"{len(diffs)} tiling decision(s) drifted from "
            f"{GOLDEN_PATH.name}:\n  {detail}\n"
            "If intentional, regenerate with `python -m pytest "
            "tests/test_tiling.py --regen-golden` and commit the diff."
        )


# -- CLI -----------------------------------------------------------------------


def test_tile_explain_cli(capsys):
    from repro.cli import main

    assert main(["tile", "explain", "64x64x64", "1", "16",
                 "--budget", "64k"]) == 0
    out = capsys.readouterr().out
    assert "decision" in out and "tile shape" in out
    assert main(["tile", "explain", "8x8", "0", "4", "--budget", "10"]) == 1
    assert "untileable" in capsys.readouterr().out


def test_explain_tiling_is_json_safe():
    info = explain_tiling((16, 16, 16), 1, 4, budget=4096)
    json.dumps(info)
    assert info["view_tileable"] == (not info["packed"])


# -- budget pinning keeps decisions coherent -----------------------------------


def test_execution_pins_the_budget_it_planned_with(monkeypatch):
    # The tiling plan's budget governs execution even if the env flips
    # between planning and executing — the pin is the whole point.
    shape, j, mode = (8, 6, 6), 3, 1
    x, u = _case_arrays(shape, j, mode)
    budget = _min_tile_budget(shape, mode, j, ROW_MAJOR)
    base = default_plan(shape, mode, j, ROW_MAJOR)
    tiling = TilingPlanner().plan(base, budget=budget, out_preallocated=True)
    monkeypatch.setenv(MEM_LIMIT_ENV, "1")  # would refuse everything
    out = DenseTensor.empty(tiling.out_shape, ROW_MAJOR)
    with pinned_budget(1 << 30):
        # An outer pin must be restored after execute_tiled's inner pin.
        got = execute_tiled(x, u, tiling, out=out)
        from repro.resilience.memory import available_bytes
        assert available_bytes() == 1 << 30
    np.testing.assert_allclose(
        got.data, ttm_oracle(x.data, u, mode), rtol=1e-10, atol=1e-12
    )
