"""Tests for the InTensLi facade and top-level repro.ttm."""

import numpy as np
import pytest

import repro
from repro.analysis import XEON_E7_4820
from repro.core import InTensLi
from repro.gemm.bench import synthetic_profile
from repro.tensor.dense import DenseTensor
from repro.tensor.layout import COL_MAJOR, ROW_MAJOR
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


class TestConstruction:
    def test_default_builds_synthetic_profile(self):
        lib = InTensLi()
        assert lib.profile.meta["source"] == "synthetic"

    def test_measured_profile_option(self):
        lib = InTensLi(benchmark="measure", benchmark_j=(4,))
        assert lib.profile.meta["source"] == "measured"

    def test_calibrated_profile_option(self):
        lib = InTensLi(benchmark="calibrate", benchmark_j=(4,))
        assert lib.profile.meta["source"] == "synthetic"
        assert lib.profile.meta["platform"].startswith("host:")
        assert lib.plan((20, 20, 20), 0, 4).degree >= 1

    def test_explicit_profile_respected(self):
        profile = synthetic_profile([(16, 64, 64)] , XEON_E7_4820)
        lib = InTensLi(profile=profile)
        assert lib.profile is profile

    def test_invalid_options(self):
        with pytest.raises(ShapeError):
            InTensLi(benchmark="nope")
        with pytest.raises(ShapeError):
            InTensLi(executor="nope")
        with pytest.raises(ValueError):
            InTensLi(max_threads=0)


class TestPlanning:
    def test_plans_are_cached(self):
        lib = InTensLi()
        p1 = lib.plan((20, 20, 20), 0, 4)
        p2 = lib.plan((20, 20, 20), 0, 4)
        assert p1 is p2
        assert lib.cached_plans == 1

    def test_distinct_inputs_distinct_plans(self):
        lib = InTensLi()
        lib.plan((20, 20, 20), 0, 4)
        lib.plan((20, 20, 20), 1, 4)
        lib.plan((20, 20, 20), 0, 8)
        assert lib.cached_plans == 3

    def test_layout_part_of_key(self):
        lib = InTensLi()
        p_c = lib.plan((20, 20, 20), 1, 4, ROW_MAJOR)
        p_f = lib.plan((20, 20, 20), 1, 4, COL_MAJOR)
        assert p_c is not p_f
        assert p_f.layout is COL_MAJOR


class TestExecution:
    @pytest.mark.parametrize("executor", ["generated", "interpreted"])
    @pytest.mark.parametrize("layout", [ROW_MAJOR, COL_MAJOR])
    def test_ttm_matches_oracle(self, executor, layout):
        rng = np.random.default_rng(22)
        lib = InTensLi(executor=executor, max_threads=2)
        x = DenseTensor(rng.standard_normal((6, 7, 8)), layout)
        u = rng.standard_normal((3, 7))
        y = lib.ttm(x, u, 1)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 1))

    def test_ttm_accepts_raw_ndarray(self):
        rng = np.random.default_rng(23)
        lib = InTensLi()
        x = rng.standard_normal((5, 6, 7))
        u = rng.standard_normal((2, 6))
        y = lib.ttm(x, u, 1)
        assert np.allclose(y.data, ttm_oracle(x, u, 1))

    def test_ttm_writes_into_out(self):
        rng = np.random.default_rng(24)
        lib = InTensLi()
        x = DenseTensor(rng.standard_normal((5, 6, 7)))
        u = rng.standard_normal((2, 6))
        out = DenseTensor.empty((5, 2, 7))
        buf = out.data
        result = lib.ttm(x, u, 1, out=out)
        assert result is out and out.data is buf
        assert np.allclose(out.data, ttm_oracle(x.data, u, 1))

    def test_execute_validates_geometry(self):
        lib = InTensLi()
        plan = lib.plan((5, 6, 7), 1, 2)
        x_bad = DenseTensor.zeros((5, 6, 8))
        with pytest.raises(ShapeError):
            lib.execute(plan, x_bad, np.zeros((2, 6)))
        x = DenseTensor.zeros((5, 6, 7))
        with pytest.raises(ShapeError):
            lib.execute(plan, x, np.zeros((2, 9)))
        with pytest.raises(ShapeError):
            lib.execute(plan, x, np.zeros((2, 6)),
                        out=DenseTensor.zeros((5, 3, 7)))

    def test_u_must_be_2d(self):
        lib = InTensLi()
        with pytest.raises(ShapeError):
            lib.ttm(DenseTensor.zeros((4, 4)), np.zeros(4), 0)


class TestTune:
    def test_tune_pins_measured_best(self):
        rng = np.random.default_rng(30)
        lib = InTensLi()
        x = DenseTensor(rng.standard_normal((10, 10, 10, 10)))
        u = rng.standard_normal((4, 10))
        best = lib.tune(x, u, 0, min_seconds=0.002)
        # The pinned plan is now what .plan() returns for this signature.
        assert lib.plan(x.shape, 0, 4) == best
        # And execution through the facade still matches the oracle.
        y = lib.ttm(x, u, 0)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 0))

    def test_tuned_plan_survives_cache_roundtrip(self, tmp_path):
        rng = np.random.default_rng(31)
        lib = InTensLi()
        x = DenseTensor(rng.standard_normal((8, 8, 8)))
        u = rng.standard_normal((3, 8))
        best = lib.tune(x, u, 0, min_seconds=0.002)
        path = tmp_path / "tuned.json"
        lib.save_plan_cache(str(path))
        fresh = InTensLi()
        fresh.load_plan_cache(str(path))
        assert fresh.plan(x.shape, 0, 3) == best

    def test_tune_validates_u(self):
        lib = InTensLi()
        with pytest.raises(ShapeError):
            lib.tune(DenseTensor.zeros((4, 4)), np.zeros(4), 0)


class TestTopLevelApi:
    def test_repro_ttm(self):
        rng = np.random.default_rng(25)
        x = repro.DenseTensor(rng.standard_normal((4, 5, 6)))
        u = rng.standard_normal((2, 5))
        y = repro.ttm(x, u, 1)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 1))

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None

    def test_version(self):
        assert repro.__version__ == "1.0.0"
