"""Shared test utilities: definitional oracles and shape grids.

The single source of truth for TTM correctness in this repository is
:func:`ttm_oracle`, a direct transcription of the paper's equation (1)
via einsum.  Every TTM implementation (in-place, generated, baselines,
representation forms) is tested against it.
"""

from __future__ import annotations

import numpy as np

from repro.tensor.dense import DenseTensor
from repro.tensor.layout import Layout


def ttm_oracle(x: np.ndarray, u: np.ndarray, mode: int) -> np.ndarray:
    """Mode-n product by definition (equation 1): contract mode *mode* with U.

    ``Y[i1..j..iN] = sum_k X[i1..k..iN] * U[j, k]``.
    """
    moved = np.tensordot(u, x, axes=(1, mode))
    # tensordot puts the new J axis first; move it back to position `mode`.
    return np.moveaxis(moved, 0, mode)


def random_ttm_case(shape, j, mode, layout=Layout.ROW_MAJOR, seed=0):
    """A (tensor, matrix, mode) triple with deterministic contents."""
    rng = np.random.default_rng(seed)
    x = DenseTensor(rng.standard_normal(tuple(shape)), layout)
    u = rng.standard_normal((j, shape[mode]))
    return x, u, mode


# Shape grid exercising orders 2..5, non-square extents, size-1 modes,
# and J both smaller and larger than I_n.
TTM_CASES = [
    # (shape, J, mode)
    ((7,), 3, 0),
    ((5, 6), 4, 0),
    ((5, 6), 4, 1),
    ((3, 4, 5), 2, 0),
    ((3, 4, 5), 6, 1),
    ((3, 4, 5), 2, 2),
    ((1, 4, 5), 2, 1),
    ((3, 1, 5), 2, 0),
    ((3, 4, 1), 2, 2),
    ((4, 4, 4, 4), 3, 0),
    ((2, 3, 4, 5), 2, 1),
    ((2, 3, 4, 5), 7, 2),
    ((2, 3, 4, 5), 2, 3),
    ((2, 2, 2, 2, 3), 2, 0),
    ((2, 2, 3, 2, 2), 4, 2),
    ((2, 2, 2, 2, 3), 2, 4),
    ((6, 5), 1, 0),  # J = 1
    ((3, 4, 5), 9, 1),  # J > I_n
]
