"""Tests for the blocked-GEMM trace: does Goto blocking pay off?"""

import pytest

from repro.cachesim import CacheModel, blocked_gemm_trace, gemm_trace
from repro.cachesim.trace import Mat
from repro.util.errors import ShapeError


def mats(m, k, n):
    """Three row-major operands laid out back to back."""
    a = Mat(0, m, k, k, 1)
    b = Mat(m * k, k, n, n, 1)
    c = Mat(m * k + k * n, m, n, n, 1)
    return a, b, c


def count_accumulation(trace):
    """Replay helper: (reads, writes) of a trace."""
    reads = writes = 0
    for _addr, is_write in trace:
        if is_write:
            writes += 1
        else:
            reads += 1
    return reads, writes


class TestBlockedTraceStructure:
    def test_access_counts_include_packing(self):
        m, k, n = 4, 6, 8
        a, b, c = mats(m, k, n)
        events = list(blocked_gemm_trace(a, b, c, mc=2, kc=3, nc=4))
        # Flop reads: 2 per (i,j,p); C writes: one per (i,j) per K slab.
        flop_reads = 2 * m * k * n
        k_slabs = 2  # ceil(6/3)
        c_writes = m * n * k_slabs
        # Packing: B panel packed once per (jc, pc): k*n read+write;
        # A block packed once per (jc, pc, ic): for each jc, full A.
        n_panels = 2  # ceil(8/4)
        pack_b = 2 * k * n
        pack_a = 2 * m * k * n_panels
        assert len(events) == flop_reads + c_writes + pack_b + pack_a

    def test_shape_mismatch(self):
        a, b, c = mats(2, 3, 4)
        bad_c = Mat(c.base, 3, 4, 4, 1)
        with pytest.raises(ShapeError):
            list(blocked_gemm_trace(a, b, bad_c))

    def test_block_size_validation(self):
        a, b, c = mats(2, 3, 4)
        with pytest.raises(ValueError):
            list(blocked_gemm_trace(a, b, c, mc=0))

    def test_pack_buffers_disjoint_from_operands(self):
        m, k, n = 3, 4, 5
        a, b, c = mats(m, k, n)
        operand_end = m * k + k * n + m * n
        for addr, is_write in blocked_gemm_trace(a, b, c, mc=2, kc=2, nc=2):
            if addr >= operand_end:
                continue  # pack-buffer access
            assert 0 <= addr < operand_end


class TestBlockingPaysOff:
    def test_blocked_moves_fewer_words_when_operands_exceed_cache(self):
        """With B far larger than the cache, the naive ijk order
        re-streams B per output row; blocking amortizes it through the
        packed panel despite paying for the pack copies."""
        m, k, n = 16, 48, 48  # B = 2304 words >> 512-word cache
        a, b, c = mats(m, k, n)
        cache_naive = CacheModel(512, line_words=8)
        cache_naive.run(gemm_trace(a, b, c, kc=k))
        cache_naive.flush()
        naive_words = cache_naive.counters.words_moved

        cache_blocked = CacheModel(512, line_words=8)
        cache_blocked.run(
            blocked_gemm_trace(a, b, c, mc=16, kc=16, nc=16)
        )
        cache_blocked.flush()
        blocked_words = cache_blocked.counters.words_moved
        assert blocked_words < naive_words

    def test_blocking_unnecessary_when_everything_fits(self):
        """In-cache operands: blocking only adds packing traffic."""
        m, k, n = 4, 6, 8
        a, b, c = mats(m, k, n)
        big = CacheModel(4096, line_words=8)
        big.run(gemm_trace(a, b, c, kc=k))
        big.flush()
        naive_words = big.counters.words_moved

        big2 = CacheModel(4096, line_words=8)
        big2.run(blocked_gemm_trace(a, b, c, mc=2, kc=3, nc=4))
        big2.flush()
        assert big2.counters.words_moved >= naive_words


class TestLruStackProperty:
    def test_bigger_fully_associative_cache_never_misses_more(self):
        """LRU inclusion: for any trace, a larger fully associative
        cache's miss count is <= a smaller one's."""
        m, k, n = 8, 16, 16
        a, b, c = mats(m, k, n)
        trace = list(gemm_trace(a, b, c, kc=8))
        misses = []
        for words in (64, 128, 256, 512, 1024):
            cache = CacheModel(words, line_words=8)
            cache.run(iter(trace))
            misses.append(cache.counters.misses)
        assert all(b2 <= a2 for a2, b2 in zip(misses, misses[1:]))

    def test_set_associativity_can_only_add_conflict_misses(self):
        m, k, n = 8, 16, 16
        a, b, c = mats(m, k, n)
        trace = list(gemm_trace(a, b, c, kc=8))
        full = CacheModel(256, line_words=8)
        full.run(iter(trace))
        direct = CacheModel(256, line_words=8, associativity=1)
        direct.run(iter(trace))
        assert direct.counters.misses >= full.counters.misses
