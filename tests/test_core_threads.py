"""Tests for thread allocation (the PTH rule) and the parfor substrate."""

import threading

import pytest

from repro.core.threads import (
    DEFAULT_PTH_BYTES,
    ThreadAllocation,
    allocate_threads,
)
from repro.parallel import iter_index_space, parfor


class TestThreadAllocation:
    def test_default_pth_is_800kb(self):
        assert DEFAULT_PTH_BYTES == 800 * 1024

    def test_small_kernel_gets_loop_threads(self):
        alloc = allocate_threads(100 * 1024, max_threads=8)
        assert alloc.loop_threads == 8
        assert alloc.kernel_threads == 1

    def test_large_kernel_gets_kernel_threads(self):
        alloc = allocate_threads(2 * 1024**2, max_threads=8)
        assert alloc.loop_threads == 1
        assert alloc.kernel_threads == 8

    def test_boundary_is_kernel_side(self):
        alloc = allocate_threads(DEFAULT_PTH_BYTES, max_threads=4)
        assert alloc.kernel_threads == 4

    def test_loop_iterations_cap(self):
        # Only 2 loop iterations: surplus threads flow to the kernel.
        alloc = allocate_threads(1024, max_threads=8, loop_iterations=2)
        assert alloc.loop_threads == 2
        assert alloc.kernel_threads == 4

    def test_single_iteration_forces_kernel_side(self):
        alloc = allocate_threads(1024, max_threads=8, loop_iterations=1)
        assert alloc.loop_threads == 1
        assert alloc.kernel_threads == 8

    def test_single_thread_budget(self):
        alloc = allocate_threads(1024, max_threads=1)
        assert alloc == ThreadAllocation(1, 1)

    def test_custom_pth(self):
        alloc = allocate_threads(1024, max_threads=4, pth_bytes=512)
        assert alloc.kernel_threads == 4  # 1024 >= 512: kernel side

    def test_validation(self):
        with pytest.raises(ValueError):
            allocate_threads(-1, 4)
        with pytest.raises(ValueError):
            allocate_threads(10, 0)
        with pytest.raises(ValueError):
            allocate_threads(10, 4, loop_iterations=0)

    def test_total(self):
        assert ThreadAllocation(2, 3).total == 6


class TestIterIndexSpace:
    def test_odometer_order(self):
        assert list(iter_index_space((2, 3))) == [
            (0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)
        ]

    def test_empty_extents_yield_one_empty_tuple(self):
        assert list(iter_index_space(())) == [()]

    def test_zero_extent_yields_nothing(self):
        assert list(iter_index_space((2, 0))) == []


class TestParfor:
    def test_serial_visits_every_index(self):
        seen = []
        count = parfor((2, 3), seen.append, threads=1)
        assert count == 6
        assert sorted(seen) == sorted(iter_index_space((2, 3)))

    def test_parallel_visits_every_index_once(self):
        seen = []
        lock = threading.Lock()

        def body(index):
            with lock:
                seen.append(index)

        count = parfor((4, 5), body, threads=3)
        assert count == 20
        assert sorted(seen) == sorted(iter_index_space((4, 5)))

    def test_zero_iterations(self):
        assert parfor((0, 5), lambda i: None, threads=2) == 0

    def test_empty_extents_run_body_once(self):
        seen = []
        assert parfor((), seen.append, threads=1) == 1
        assert seen == [()]

    def test_worker_exception_propagates(self):
        def body(index):
            if index == (1,):
                raise RuntimeError("boom")

        with pytest.raises(RuntimeError):
            parfor((4,), body, threads=2)

    def test_invalid_threads(self):
        with pytest.raises(ValueError):
            parfor((2,), lambda i: None, threads=0)


class TestPersistentPool:
    def test_pool_is_reused_across_calls(self):
        from repro.parallel.parfor import get_pool

        first = get_pool(3)
        parfor((8,), lambda i: None, threads=3)
        parfor((8,), lambda i: None, threads=3)
        assert get_pool(3) is first

    def test_pool_count_stays_flat_under_repeated_parfor(self):
        from repro.parallel.parfor import active_pool_count

        parfor((6,), lambda i: None, threads=2)
        before = active_pool_count()
        for _ in range(5):
            parfor((6,), lambda i: None, threads=2)
        assert active_pool_count() == before

    def test_exception_still_propagates_through_reused_pool(self):
        def boom(index):
            if index == (3,):
                raise ValueError("boom")

        with pytest.raises(ValueError, match="boom"):
            parfor((8,), boom, threads=2)
        # The pool survives the failure and keeps working.
        seen = []
        lock = threading.Lock()

        def body(index):
            with lock:
                seen.append(index)

        assert parfor((8,), body, threads=2) == 8
        assert sorted(seen) == sorted(iter_index_space((8,)))

    def test_index_space_is_never_materialized(self):
        """A huge collapsed space must stream, not be list()-ed.

        2**40 iterations would need ~10 TB as a list; pulling only the
        first blocks and then failing proves the feed is lazy.
        """

        def body(index):
            raise RuntimeError("stop immediately")

        with pytest.raises(RuntimeError):
            parfor((2**20, 2**20), body, threads=2)
