"""Tests for the persistent autotune plan cache and its session wrapper.

Covers the contract stated in the module docs: a second call for an
identical signature performs no estimator/tuner work; corrupt, stale or
foreign store files are detected, counted as invalidations and degrade
to the estimator path; refinement promotes only measured winners.
"""

import json
import os

import numpy as np
import pytest

from repro.autotune import (
    AutotuneSession,
    PlanCache,
    PlanKey,
    PlanStore,
    default_cache_path,
    plan_digest,
)
from repro.autotune.store import CACHE_PATH_ENV
from repro.core import SCHEMA_VERSION, InTensLi
from repro.core.inttm import default_plan
from repro.perf.profiler import track_hot_path
from repro.tensor.generate import random_tensor
from repro.tensor.layout import ROW_MAJOR
from repro.testing import ttm_reference
from repro.util.errors import (
    CacheError,
    FingerprintMismatchError,
    PlanError,
    SchemaMismatchError,
    StoreCorruptError,
)

SHAPE = (6, 7, 8, 9)
MODE = 1
J = 4


@pytest.fixture
def cache_path(tmp_path):
    return str(tmp_path / "plans.json")


def make_session(cache_path, **kwargs):
    return AutotuneSession(InTensLi(), path=cache_path, **kwargs)


def inputs(shape=SHAPE, j=J, mode=MODE):
    x = random_tensor(shape, seed=3)
    u = np.random.default_rng(5).standard_normal((j, shape[mode]))
    return x, u


class TestSessionCaching:
    def test_first_call_estimates_then_caches(self, cache_path):
        session = make_session(cache_path)
        x, u = inputs()
        with track_hot_path() as counters:
            y = session.ttm(x, u, MODE)
        assert counters.estimator_runs == 1
        assert counters.plan_cache_misses == 1
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)

    def test_second_call_is_pure_cache_hit(self, cache_path):
        """Acceptance: identical key -> zero estimator/tuner work."""
        session = make_session(cache_path)
        x, u = inputs()
        session.ttm(x, u, MODE)
        with track_hot_path() as counters:
            y = session.ttm(x, u, MODE)
        assert counters.estimator_runs == 0
        assert counters.tuner_sweeps == 0
        assert counters.plan_cache_hits == 1
        assert counters.plan_cache_misses == 0
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)

    def test_fresh_session_hits_disk_cache(self, cache_path):
        x, u = inputs()
        make_session(cache_path).ttm(x, u, MODE)
        reborn = make_session(cache_path)  # simulates a new process
        with track_hot_path() as counters:
            reborn.ttm(x, u, MODE)
        assert counters.estimator_runs == 0
        assert counters.plan_cache_hits == 1

    def test_distinct_signatures_get_distinct_entries(self, cache_path):
        session = make_session(cache_path)
        x, u = inputs()
        session.ttm(x, u, MODE)
        session.ttm(x, np.vstack([u, u]), MODE)  # different J
        assert len(session.cache) == 2

    def test_attached_intensli_plan_shares_the_cache(self, cache_path):
        session = make_session(cache_path)
        session.plan(SHAPE, MODE, J)
        with track_hot_path() as counters:
            plan = session.lib.plan(SHAPE, MODE, J)
        assert counters.estimator_runs == 0
        assert counters.plan_cache_hits == 1
        assert plan == session.cache.peek(session.key_for(SHAPE, MODE, J)).plan

    def test_warm_reports_only_new_signatures(self, cache_path):
        session = make_session(cache_path)
        sigs = [(SHAPE, MODE, J), ((5, 5, 5), 0, 2)]
        assert session.warm(sigs) == 2
        assert session.warm(sigs) == 0
        assert len(session.cache) == 2

    def test_tune_writes_through_with_tuned_source(self, cache_path):
        session = make_session(cache_path)
        x, u = inputs(shape=(4, 4, 4), j=2, mode=0)
        with track_hot_path() as counters:
            session.lib.tune(x, u, 0, min_seconds=0.001)
        assert counters.tuner_sweeps == 1
        entry = session.cache.peek(session.key_for((4, 4, 4), 0, 2))
        assert entry is not None
        assert entry.source == "tuned"

    def test_default_path_respects_env(self, monkeypatch, tmp_path):
        override = str(tmp_path / "override.json")
        monkeypatch.setenv(CACHE_PATH_ENV, override)
        assert default_cache_path() == override
        monkeypatch.delenv(CACHE_PATH_ENV)
        assert default_cache_path().endswith(os.path.join("repro", "plans.json"))


class TestPlanKey:
    def test_encode_decode_roundtrip(self):
        key = PlanKey.make(SHAPE, MODE, J, ROW_MAJOR, 4)
        assert PlanKey.decode(key.encode()) == key

    @pytest.mark.parametrize("text", ["", "6x6", "6x6|m1|J4", "a|b|c|d|e"])
    def test_decode_rejects_malformed(self, text):
        with pytest.raises(PlanError):
            PlanKey.decode(text)


class TestFailureModes:
    """Acceptance: bad store files fall back to the estimator path."""

    def corrupt_and_reopen(self, cache_path, text):
        with open(cache_path, "w") as fh:
            fh.write(text)
        return make_session(cache_path)

    def seeded_path(self, cache_path):
        x, u = inputs()
        make_session(cache_path).ttm(x, u, MODE)
        return x, u

    def test_corrupted_json_invalidates_and_recovers(self, cache_path):
        x, u = self.seeded_path(cache_path)
        with track_hot_path() as counters:
            session = self.corrupt_and_reopen(cache_path, "{not json!")
            assert session.cache.stats.invalidations == 1
            assert len(session.cache) == 0
            y = session.ttm(x, u, MODE)
        assert counters.plan_cache_invalidations == 1
        assert counters.estimator_runs == 1  # estimator path, not a crash
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)

    def test_half_written_store_is_treated_as_corrupt(self, cache_path):
        """A reader racing a non-atomic writer sees a truncated file."""
        x, u = self.seeded_path(cache_path)
        full = open(cache_path).read()
        session = self.corrupt_and_reopen(cache_path, full[: len(full) // 2])
        assert session.cache.stats.invalidations == 1
        y = session.ttm(x, u, MODE)
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)

    def test_schema_mismatch_invalidates(self, cache_path):
        x, u = self.seeded_path(cache_path)
        payload = json.load(open(cache_path))
        payload["schema"] = SCHEMA_VERSION + 1
        json.dump(payload, open(cache_path, "w"))
        session = make_session(cache_path)
        assert session.cache.stats.invalidations == 1
        assert len(session.cache) == 0

    def test_foreign_fingerprint_invalidates(self, cache_path):
        x, u = self.seeded_path(cache_path)
        payload = json.load(open(cache_path))
        payload["fingerprint"] = "deadbeefdeadbeef"
        json.dump(payload, open(cache_path, "w"))
        session = make_session(cache_path)
        assert session.cache.stats.invalidations == 1
        with track_hot_path() as counters:
            session.ttm(x, u, MODE)
        assert counters.estimator_runs == 1

    def test_malformed_entry_invalidates(self, cache_path):
        self.seeded_path(cache_path)
        payload = json.load(open(cache_path))
        key = next(iter(payload["entries"]))
        payload["entries"][key] = {"no_plan_here": True}
        json.dump(payload, open(cache_path, "w"))
        assert make_session(cache_path).cache.stats.invalidations == 1

    def test_illegal_plan_payload_invalidates(self, cache_path):
        self.seeded_path(cache_path)
        payload = json.load(open(cache_path))
        key = next(iter(payload["entries"]))
        payload["entries"][key]["plan"]["component_modes"] = [0, 9]
        json.dump(payload, open(cache_path, "w"))
        assert make_session(cache_path).cache.stats.invalidations == 1

    def test_store_raises_typed_errors(self, cache_path):
        store = PlanStore(cache_path, fingerprint="aaaa")
        with open(cache_path, "w") as fh:
            fh.write("][")
        with pytest.raises(StoreCorruptError):
            store.load()
        json.dump({"schema": 999, "entries": {}}, open(cache_path, "w"))
        with pytest.raises(SchemaMismatchError):
            store.load()
        json.dump(
            {"schema": SCHEMA_VERSION, "fingerprint": "bbbb", "entries": {}},
            open(cache_path, "w"),
        )
        with pytest.raises(FingerprintMismatchError):
            store.load()
        for exc in (StoreCorruptError, SchemaMismatchError,
                    FingerprintMismatchError):
            assert issubclass(exc, CacheError)

    def test_unstamped_file_loads_anywhere(self, cache_path):
        writer = PlanCache(
            path=cache_path, fingerprint="machine-a", autosave=True
        )
        writer.put(
            PlanKey.make((5, 5, 5), 0, 2, ROW_MAJOR, 1),
            default_plan((5, 5, 5), 0, 2, ROW_MAJOR),
        )
        payload = json.load(open(cache_path))
        payload["fingerprint"] = None  # portable, geometry-only cache
        json.dump(payload, open(cache_path, "w"))
        reader = PlanCache(path=cache_path, fingerprint="machine-b")
        assert len(reader) == 1
        assert reader.stats.invalidations == 0


class TestAtomicSave:
    def test_save_leaves_no_temp_files(self, cache_path):
        session = make_session(cache_path)
        x, u = inputs()
        for _ in range(3):
            session.ttm(x, u, MODE)
            session.save()
        leftovers = [
            f for f in os.listdir(os.path.dirname(cache_path))
            if f != os.path.basename(cache_path)
        ]
        assert leftovers == []

    def test_save_creates_parent_directories(self, tmp_path):
        nested = str(tmp_path / "a" / "b" / "plans.json")
        cache = PlanCache(path=nested, fingerprint="x")
        cache.put(
            PlanKey.make((5, 5, 5), 0, 2, ROW_MAJOR, 1),
            default_plan((5, 5, 5), 0, 2, ROW_MAJOR),
        )
        assert os.path.exists(nested)

    def test_clear_removes_file_and_entries(self, cache_path):
        session = make_session(cache_path)
        session.plan(SHAPE, MODE, J)
        assert os.path.exists(cache_path)
        assert session.cache.clear() == 1
        assert not os.path.exists(cache_path)
        assert len(session.cache) == 0


class _ScriptedSession(AutotuneSession):
    """Refinement with deterministic fake timings (no wall-clock flake)."""

    def __init__(self, *args, timings=None, **kwargs):
        super().__init__(*args, **kwargs)
        self.timings = timings or {}
        self.measured = []

    def _measure(self, plan, x, u):
        self.measured.append(plan_digest(plan))
        return self.timings.get(plan_digest(plan), 1.0)


class TestRefinement:
    def scripted(self, cache_path, incumbent_s, alternate_s, **kwargs):
        session = _ScriptedSession(
            InTensLi(), path=cache_path, refine=True, **kwargs
        )
        from repro.core.tuner import enumerate_plans

        incumbent = session.plan(SHAPE, MODE, J)
        key = session.key_for(SHAPE, MODE, J)
        alternates = [
            p for p in enumerate_plans(SHAPE, MODE, J, ROW_MAJOR)
            if plan_digest(p) != plan_digest(incumbent)
        ]
        assert alternates, "test shape must admit >1 legal configuration"
        session.timings = {plan_digest(incumbent): incumbent_s}
        for alt in alternates:
            session.timings[plan_digest(alt)] = alternate_s
        return session, key, incumbent

    def test_measured_winner_is_promoted(self, cache_path):
        session, key, incumbent = self.scripted(cache_path, 1.0, 0.2)
        x, u = inputs()
        y = session.ttm(x, u, MODE)
        entry = session.cache.peek(key)
        assert entry.source == "measured"
        assert entry.plan != incumbent
        assert entry.seconds == 0.2
        assert session.cache.stats.promotions == 1
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)

    def test_promotion_survives_restart(self, cache_path):
        session, key, _ = self.scripted(cache_path, 1.0, 0.2)
        x, u = inputs()
        session.ttm(x, u, MODE)
        promoted = session.cache.peek(key).plan
        reborn = make_session(cache_path)
        assert reborn.plan(SHAPE, MODE, J) == promoted

    def test_within_margin_alternates_are_not_promoted(self, cache_path):
        session, key, incumbent = self.scripted(
            cache_path, 1.0, 0.97, refine_margin=0.05
        )
        x, u = inputs()
        session.ttm(x, u, MODE)
        entry = session.cache.peek(key)
        assert entry.plan == incumbent
        assert session.cache.stats.promotions == 0
        assert len(entry.trials) >= 2  # evidence recorded all the same

    def test_refinement_stops_when_space_is_exhausted(self, cache_path):
        session, key, _ = self.scripted(cache_path, 1.0, 0.9)
        x, u = inputs()
        for _ in range(4):
            session.ttm(x, u, MODE)
        before = len(session.measured)
        session.ttm(x, u, MODE)
        assert len(session.measured) == before  # nothing left to try

    def test_refine_trials_zero_only_times_incumbent(self, cache_path):
        session, key, incumbent = self.scripted(
            cache_path, 1.0, 0.1, refine_trials=0
        )
        x, u = inputs()
        session.ttm(x, u, MODE)
        assert session.measured == [plan_digest(incumbent)]
        assert session.cache.stats.promotions == 0

    def test_real_refinement_executes_correctly(self, cache_path):
        """Unscripted end-to-end: real timings, result stays correct."""
        session = make_session(cache_path, refine=True, min_seconds=0.0005)
        x, u = inputs()
        for _ in range(3):
            y = session.ttm(x, u, MODE)
        np.testing.assert_allclose(y.data, ttm_reference(x, u, MODE).data)
        entry = session.cache.peek(session.key_for(SHAPE, MODE, J))
        assert len(entry.trials) >= 2


class TestCacheCli:
    def run(self, argv):
        from repro.cli import main

        return main(argv)

    def test_warm_show_clear_cycle(self, cache_path, capsys):
        assert self.run(
            ["cache", "warm", "6x7x8", "1", "4", "8", "--path", cache_path]
        ) == 0
        out = capsys.readouterr().out
        assert "2 new" in out
        assert self.run(["cache", "show", "--path", cache_path]) == 0
        out = capsys.readouterr().out
        assert "entries      2" in out
        assert "6x7x8|m1|J4|ROW_MAJOR|T1" in out
        assert self.run(["cache", "clear", "--path", cache_path]) == 0
        assert "removed" in capsys.readouterr().out
        assert not os.path.exists(cache_path)
        assert self.run(["cache", "clear", "--path", cache_path]) == 0
        assert "no cache" in capsys.readouterr().out

    def test_show_flags_invalidated_store(self, cache_path, capsys):
        with open(cache_path, "w") as fh:
            fh.write("{broken")
        assert self.run(["cache", "show", "--path", cache_path]) == 0
        assert "INVALIDATED" in capsys.readouterr().out
