"""Tests for the Tucker decomposition (HOSVD / HOOI) over TTM backends."""

import numpy as np
import pytest

from repro.baselines import ttm_copy
from repro.core.inttm import ttm_inplace
from repro.decomp import TuckerResult, hooi, hosvd, tucker_reconstruct
from repro.decomp.tucker import tucker_fit
from repro.tensor.dense import DenseTensor
from repro.tensor.generate import low_rank_tensor, random_tensor
from repro.util.errors import ShapeError


def inplace_backend(x, u, mode):
    return ttm_inplace(x, u, mode)


class TestHosvd:
    def test_exact_recovery_of_low_rank_tensor(self):
        ranks = (2, 3, 2)
        x = low_rank_tensor((8, 9, 7), ranks, seed=0)
        result = hosvd(x, ranks, ttm_backend=inplace_backend)
        assert result.fit == pytest.approx(1.0, abs=1e-6)
        recon = tucker_reconstruct(result.core, result.factors,
                                   ttm_backend=inplace_backend)
        assert np.allclose(recon.data, x.data, atol=1e-8)

    def test_core_shape_is_ranks(self):
        x = random_tensor((6, 7, 8), seed=1)
        result = hosvd(x, (2, 3, 4), ttm_backend=inplace_backend)
        assert result.core.shape == (2, 3, 4)
        assert result.ranks == (2, 3, 4)

    def test_factors_are_orthonormal(self):
        x = random_tensor((6, 7, 8), seed=2)
        result = hosvd(x, (3, 3, 3), ttm_backend=inplace_backend)
        for factor in result.factors:
            gram = factor.T @ factor
            assert np.allclose(gram, np.eye(factor.shape[1]), atol=1e-10)

    def test_integer_rank_broadcasts(self):
        x = random_tensor((6, 7, 8), seed=3)
        result = hosvd(x, 2, ttm_backend=inplace_backend)
        assert result.core.shape == (2, 2, 2)

    def test_rank_validation(self):
        x = random_tensor((4, 4), seed=4)
        with pytest.raises(ShapeError):
            hosvd(x, (2, 5), ttm_backend=inplace_backend)
        with pytest.raises(ShapeError):
            hosvd(x, (2,), ttm_backend=inplace_backend)


class TestHooi:
    def test_recovers_planted_structure(self):
        ranks = (2, 2, 2)
        x = low_rank_tensor((10, 9, 8), ranks, seed=5)
        result = hooi(x, ranks, ttm_backend=inplace_backend)
        assert result.fit == pytest.approx(1.0, abs=1e-6)

    def test_fit_never_decreases(self):
        x = random_tensor((8, 8, 8), seed=6)
        result = hooi(x, (3, 3, 3), ttm_backend=inplace_backend,
                      max_iterations=6, tolerance=0.0)
        fits = result.fit_history
        assert all(b >= a - 1e-10 for a, b in zip(fits, fits[1:]))

    def test_hooi_at_least_as_good_as_hosvd(self):
        x = random_tensor((8, 8, 8), seed=7)
        start = hosvd(x, (2, 2, 2), ttm_backend=inplace_backend)
        refined = hooi(x, (2, 2, 2), ttm_backend=inplace_backend, init=start)
        assert refined.fit >= start.fit - 1e-10

    def test_early_stop_on_tolerance(self):
        x = low_rank_tensor((8, 8, 8), 2, seed=8)
        result = hooi(x, 2, ttm_backend=inplace_backend,
                      max_iterations=50, tolerance=1e-6)
        assert result.iterations < 50

    def test_backends_agree(self):
        x = random_tensor((6, 7, 5), seed=9)
        a = hooi(x, (2, 2, 2), ttm_backend=inplace_backend,
                 max_iterations=3, tolerance=0.0)
        b = hooi(x, (2, 2, 2), ttm_backend=ttm_copy,
                 max_iterations=3, tolerance=0.0)
        assert a.fit == pytest.approx(b.fit, abs=1e-10)
        assert np.allclose(np.abs(a.core.data), np.abs(b.core.data),
                           atol=1e-8)

    def test_default_backend_is_intensli(self):
        x = low_rank_tensor((6, 6, 6), 2, seed=10)
        result = hooi(x, 2)
        assert result.fit == pytest.approx(1.0, abs=1e-6)

    def test_max_iterations_validated(self):
        x = random_tensor((4, 4), seed=11)
        with pytest.raises(ShapeError):
            hooi(x, 2, max_iterations=0)

    def test_order4_decomposition(self):
        x = low_rank_tensor((5, 6, 4, 5), (2, 2, 2, 2), seed=12)
        result = hooi(x, (2, 2, 2, 2), ttm_backend=inplace_backend)
        assert result.fit == pytest.approx(1.0, abs=1e-7)


class TestSvdMethods:
    def test_randomized_matches_gram_on_low_rank(self):
        from repro.decomp.tucker import _leading_left_singular_vectors
        from repro.tensor.unfold import unfold

        x = low_rank_tensor((30, 20, 20), 3, seed=20)
        mat = unfold(x, 0)
        exact = _leading_left_singular_vectors(mat, 3, method="gram")
        randomized = _leading_left_singular_vectors(mat, 3,
                                                    method="randomized")
        # Same subspace: projector difference is tiny.
        p_exact = exact @ exact.T
        p_rand = randomized @ randomized.T
        assert np.linalg.norm(p_exact - p_rand) < 1e-6

    def test_hooi_randomized_reaches_same_fit(self):
        x = low_rank_tensor((16, 14, 12), 2, seed=21)
        exact = hooi(x, 2, ttm_backend=inplace_backend, svd_method="gram")
        randomized = hooi(x, 2, ttm_backend=inplace_backend,
                          svd_method="randomized")
        assert randomized.fit == pytest.approx(exact.fit, abs=1e-6)

    def test_unknown_method_rejected(self):
        from repro.decomp.tucker import _leading_left_singular_vectors

        with pytest.raises(ShapeError):
            _leading_left_singular_vectors(np.eye(4), 2, method="magic")

    def test_randomized_is_orthonormal(self):
        from repro.decomp.tucker import _leading_left_singular_vectors

        rng = np.random.default_rng(22)
        mat = rng.standard_normal((40, 60))
        u = _leading_left_singular_vectors(mat, 5, method="randomized")
        assert np.allclose(u.T @ u, np.eye(5), atol=1e-10)


class TestResultProperties:
    def test_compression_ratio(self):
        x = low_rank_tensor((10, 10, 10), 2, seed=13)
        result = hosvd(x, 2, ttm_backend=inplace_backend)
        # 1000 elements vs 8 + 3*20 = 68 parameters.
        assert result.compression == pytest.approx(1000 / 68)

    def test_fit_of_zero_tensor_is_one(self):
        x = DenseTensor.zeros((4, 4, 4))
        core = DenseTensor.zeros((2, 2, 2))
        factors = [np.eye(4)[:, :2] for _ in range(3)]
        assert tucker_fit(x, core, factors) == 1.0

    def test_result_dataclass_fields(self):
        x = low_rank_tensor((5, 5, 5), 2, seed=14)
        result = hooi(x, 2, ttm_backend=inplace_backend)
        assert isinstance(result, TuckerResult)
        assert len(result.factors) == 3
        assert result.iterations >= 1
        assert len(result.fit_history) == result.iterations
