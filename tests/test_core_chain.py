"""Tests for TTM chain planning and execution."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.chain import (
    ChainStep,
    chain_flops,
    greedy_order,
    optimal_order,
    ttm_chain,
)
from repro.core.inttm import ttm_inplace
from repro.tensor.dense import DenseTensor
from repro.util.errors import ShapeError
from tests.helpers import ttm_oracle


def make_steps(shape, js, seed=0):
    rng = np.random.default_rng(seed)
    return [
        ChainStep(mode, rng.standard_normal((j, shape[mode])))
        for mode, j in enumerate(js)
        if j is not None
    ]


class TestChainFlops:
    def test_single_step(self):
        steps = make_steps((10, 20), (4, None))
        assert chain_flops((10, 20), steps) == 2 * 4 * 200

    def test_sequential_shrinking(self):
        steps = make_steps((10, 20), (4, 5))
        # Step 0 first: 2*4*200 + 2*5*(4*20) = 1600 + 800.
        assert chain_flops((10, 20), steps, (0, 1)) == 1600 + 800
        # Step 1 first: 2*5*200 + 2*4*(10*5) = 2000 + 400.
        assert chain_flops((10, 20), steps, (1, 0)) == 2000 + 400

    def test_duplicate_mode_rejected(self):
        steps = [
            ChainStep(0, np.zeros((2, 5))),
            ChainStep(0, np.zeros((2, 5))),
        ]
        with pytest.raises(ShapeError):
            chain_flops((5, 5), steps)

    def test_matrix_shape_validated(self):
        with pytest.raises(ShapeError):
            chain_flops((5, 5), [ChainStep(0, np.zeros((2, 4)))])


class TestOrdering:
    def test_greedy_prefers_larger_reduction(self):
        shape = (100, 100)
        steps = make_steps(shape, (50, 2))  # ratios 2 and 50
        assert greedy_order(shape, steps) == (1, 0)

    def test_greedy_matches_optimal_on_tucker_chains(self):
        """For uniform-J Tucker projections the greedy order is optimal."""
        shape = (12, 30, 8, 20)
        steps = make_steps(shape, (4, 4, 4, 4))
        greedy = greedy_order(shape, steps)
        best = optimal_order(shape, steps)
        assert chain_flops(shape, steps, greedy) == chain_flops(
            shape, steps, best
        )

    @settings(max_examples=30, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 20), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_property_greedy_close_to_optimal(self, shape, data):
        js = [data.draw(st.integers(1, s)) for s in shape]
        steps = make_steps(tuple(shape), tuple(js))
        greedy_cost = chain_flops(shape, steps, greedy_order(shape, steps))
        best_cost = chain_flops(shape, steps, optimal_order(shape, steps))
        # Greedy-by-ratio is optimal for this cost structure (each step's
        # multiplier is independent of position); assert it exactly.
        assert greedy_cost == best_cost

    def test_optimal_never_worse_than_given(self):
        shape = (16, 4, 32)
        steps = make_steps(shape, (2, 2, 2))
        best = chain_flops(shape, steps, optimal_order(shape, steps))
        assert best <= chain_flops(shape, steps)


class TestExecution:
    def oracle_chain(self, x, steps):
        y = x
        for step in steps:
            y = ttm_oracle(y, step.matrix, step.mode)
        return y

    @pytest.mark.parametrize("order", ["greedy", "given", "optimal"])
    def test_all_orders_agree_with_oracle(self, order):
        rng = np.random.default_rng(1)
        shape = (6, 7, 8)
        x = DenseTensor(rng.standard_normal(shape))
        steps = make_steps(shape, (2, 3, 4), seed=2)
        y = ttm_chain(x, steps, backend=ttm_inplace, order=order)
        assert np.allclose(y.data, self.oracle_chain(x.data, steps))

    def test_accepts_plain_tuples(self):
        rng = np.random.default_rng(3)
        x = DenseTensor(rng.standard_normal((5, 6)))
        u = rng.standard_normal((2, 5))
        y = ttm_chain(x, [(0, u)], backend=ttm_inplace)
        assert np.allclose(y.data, ttm_oracle(x.data, u, 0))

    def test_explicit_order_sequence(self):
        rng = np.random.default_rng(4)
        shape = (5, 6, 7)
        x = DenseTensor(rng.standard_normal(shape))
        steps = make_steps(shape, (2, 2, 2), seed=5)
        y = ttm_chain(x, steps, backend=ttm_inplace, order=[2, 0, 1])
        assert np.allclose(y.data, self.oracle_chain(x.data, steps))

    def test_bad_explicit_order_rejected(self):
        x = DenseTensor.zeros((5, 6))
        steps = make_steps((5, 6), (2, 2))
        with pytest.raises(ShapeError):
            ttm_chain(x, steps, backend=ttm_inplace, order=[0, 0])

    def test_empty_chain_returns_input(self):
        x = DenseTensor.zeros((3, 3))
        y = ttm_chain(x, [], backend=ttm_inplace)
        assert y is x

    def test_default_backend_is_intensli(self):
        rng = np.random.default_rng(6)
        x = DenseTensor(rng.standard_normal((6, 7, 8)))
        steps = make_steps((6, 7, 8), (2, None, 3), seed=7)
        y = ttm_chain(x, steps)
        assert np.allclose(y.data, self.oracle_chain(x.data, steps))


class TestModeCommutativity:
    """Mode-n products along distinct modes commute — the property that
    makes chain reordering legal at all."""

    @settings(max_examples=25, deadline=None)
    @given(
        shape=st.lists(st.integers(2, 5), min_size=2, max_size=4),
        data=st.data(),
    )
    def test_property_two_products_commute(self, shape, data):
        ndim = len(shape)
        m1 = data.draw(st.integers(0, ndim - 1))
        m2 = data.draw(st.integers(0, ndim - 1).filter(lambda m: m != m1))
        rng = np.random.default_rng(8)
        x = DenseTensor(rng.standard_normal(shape))
        u1 = rng.standard_normal((2, shape[m1]))
        u2 = rng.standard_normal((3, shape[m2]))
        a = ttm_inplace(ttm_inplace(x, u1, m1), u2, m2)
        b = ttm_inplace(ttm_inplace(x, u2, m2), u1, m1)
        assert np.allclose(a.data, b.data)
