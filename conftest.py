"""Ensure the in-tree package is importable even without installation.

The offline environment lacks the ``wheel`` package, so ``pip install -e .``
cannot build a PEP 660 editable wheel; ``python setup.py develop`` works,
but this shim makes ``pytest`` self-sufficient either way.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)


import pytest  # noqa: E402 - after the sys.path shim


def pytest_addoption(parser):
    parser.addoption(
        "--regen-golden",
        action="store_true",
        default=False,
        help="rewrite the golden-plan fixtures under tests/golden/ from "
        "the current planner decisions instead of diffing against them",
    )


@pytest.fixture
def ttm_dtype():
    """Element type for the dtype-parametrizable equivalence suites.

    Defaults to float64 (the paper's setting); CI's float32 matrix leg
    sets ``REPRO_TEST_DTYPE=float32`` so the same assertions run in
    single precision without duplicating the tests.
    """
    return os.environ.get("REPRO_TEST_DTYPE", "float64")
